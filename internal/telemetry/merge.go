package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// MergeSnapshots folds any number of snapshots into one canonical
// aggregate — the farm-level view of a campaign whose cases ran in
// many processes. The result depends only on the multiset of input
// snapshots, never on their order or grouping: merging per-case
// snapshots one by one, or merging per-shard merges of them, yields
// byte-identical JSON. That property is what lets a distributed
// coordinator present the same merged telemetry a serial single-process
// campaign computes.
//
// Merge semantics:
//
//   - Cycle: the maximum input cycle (the farthest-run case).
//   - Metrics: unioned by name; slots unioned by label value and
//     summed. Counters sum naturally; gauges sum too, so a merged
//     gauge reads as a farm-wide total, not a point-in-time depth.
//     Slots are re-sorted by label value, so merged vectors are
//     canonical even when inputs registered slots in different orders.
//   - Latency: distributions unioned by invariant; observations are
//     pooled and sorted ascending, stats recomputed from the pool.
//   - Events: concatenated and sorted by (detect cycle, invariant,
//     node, addr, epoch, inject cycle, latency, detail); EventsDropped
//     sums.
//   - Series: dropped. Time-series rings are per-process views; they
//     do not aggregate meaningfully across processes.
//
// Metrics sharing a name must agree on kind and label; a mismatch is a
// schema conflict and errors rather than guessing.
func MergeSnapshots(snaps ...*Snapshot) (*Snapshot, error) {
	type slotKey struct{ metric, labelValue string }
	metricMeta := map[string]*MetricSnapshot{}
	slotSums := map[slotKey]int64{}
	latVals := map[string][]float64{}
	out := &Snapshot{}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if s.Cycle > out.Cycle {
			out.Cycle = s.Cycle
		}
		out.EventsDropped += s.EventsDropped
		out.Events = append(out.Events, s.Events...)
		for i := range s.Metrics {
			m := &s.Metrics[i]
			meta := metricMeta[m.Name]
			if meta == nil {
				metricMeta[m.Name] = &MetricSnapshot{Name: m.Name, Help: m.Help, Kind: m.Kind, Label: m.Label}
			} else if meta.Kind != m.Kind || meta.Label != m.Label {
				return nil, fmt.Errorf("telemetry: merge: metric %q has conflicting schemas (%s/%q vs %s/%q)",
					m.Name, meta.Kind, meta.Label, m.Kind, m.Label)
			} else if meta.Help == "" {
				meta.Help = m.Help
			}
			for _, v := range m.Values {
				slotSums[slotKey{m.Name, v.LabelValue}] += v.Value
			}
		}
		for i := range s.Latency {
			l := &s.Latency[i]
			latVals[l.Invariant] = append(latVals[l.Invariant], l.Values...)
		}
	}

	names := make([]string, 0, len(metricMeta))
	//dvmc:orderinsensitive keys are collected and sorted before use
	for name := range metricMeta {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ms := *metricMeta[name]
		var labelValues []string
		//dvmc:orderinsensitive keys are collected and sorted before use
		for k := range slotSums {
			if k.metric == name {
				labelValues = append(labelValues, k.labelValue)
			}
		}
		sort.Strings(labelValues)
		for _, lv := range labelValues {
			ms.Values = append(ms.Values, MetricValue{LabelValue: lv, Value: slotSums[slotKey{name, lv}]})
		}
		out.Metrics = append(out.Metrics, ms)
	}

	invariants := make([]string, 0, len(latVals))
	//dvmc:orderinsensitive keys are collected and sorted before use
	for inv := range latVals {
		invariants = append(invariants, inv)
	}
	sort.Strings(invariants)
	for _, inv := range invariants {
		vals := latVals[inv]
		sort.Float64s(vals)
		ls := LatencySnapshot{Invariant: inv, Values: vals}
		sample := ls.Sample()
		ls.N = sample.N()
		ls.MeanCyc = sample.Mean()
		ls.MinCyc = sample.Min()
		ls.MaxCyc = sample.Max()
		ls.P50Cyc = sample.Quantile(0.5)
		ls.P99Cyc = sample.Quantile(0.99)
		out.Latency = append(out.Latency, ls)
	}

	sort.SliceStable(out.Events, func(i, j int) bool { return eventLess(&out.Events[i], &out.Events[j]) })
	return out, nil
}

// eventLess is the total order merged event logs are sorted by; ties on
// every field leave equal events adjacent, so the sorted log is a
// function of the event multiset alone.
func eventLess(a, b *ViolationEvent) bool {
	switch {
	case a.DetectCycle != b.DetectCycle:
		return a.DetectCycle < b.DetectCycle
	case a.Invariant != b.Invariant:
		return a.Invariant < b.Invariant
	case a.Node != b.Node:
		return a.Node < b.Node
	case a.Addr != b.Addr:
		return a.Addr < b.Addr
	case a.Epoch != b.Epoch:
		return a.Epoch < b.Epoch
	case a.InjectCycle != b.InjectCycle:
		return a.InjectCycle < b.InjectCycle
	case a.Latency != b.Latency:
		return a.Latency < b.Latency
	default:
		return strings.Compare(a.Detail, b.Detail) < 0
	}
}
