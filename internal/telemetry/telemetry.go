// Package telemetry is the simulator's deterministic observability
// layer: a central registry of named counters and gauges with per-node,
// per-class, and per-invariant labels, fixed-capacity time-series rings
// fed by a cycle-driven Sampler, and structured detection-latency
// attribution for checker violations.
//
// The paper evaluates DVMC through end-of-run aggregates (runtime
// overhead, replay bandwidth, link utilisation, detection latency); this
// package adds visibility into how a run got there: VC and write-buffer
// occupancy over time, inform-queue backpressure at the METs, epoch-table
// pressure near Time16 wraparound, SafetyNet log growth, and per-invariant
// detection-latency distributions.
//
// Determinism is a first-class property, exactly as in the simulator
// proper: sampling is driven by the event kernel's cycle counter (never a
// wall clock), metric registration order is fixed by the assembly code,
// and every encoder iterates metrics in sorted-name order — so a
// telemetry dump is a pure function of (Config, Workload, Seed) and can
// be pinned byte-for-byte by golden tests. The package therefore lives
// inside the dvmc-lint determinism allowlist. The steady-state hot paths
// (metric updates and sampler ticks) are allocation-free, enforced by
// AllocsPerRun assertions, matching the checker hot-path discipline.
//
// Wall-clock-facing surfaces (the live /metrics HTTP endpoint, pprof) are
// deliberately kept in the cmd layer, outside this package and outside
// the allowlist.
package telemetry

import (
	"fmt"

	"dvmc/internal/sim"
)

// DefaultEvery is the default sampling period in cycles. It is a power
// of two so the modulo on the sampler's per-cycle check is cheap.
const DefaultEvery sim.Cycle = 1024

// DefaultSeriesCap is the default per-series ring capacity. Rings keep
// the newest samples (flight-recorder semantics) once full.
const DefaultSeriesCap = 512

// DefaultMaxEvents bounds the recorded ViolationEvent log.
const DefaultMaxEvents = 1024

// Config enables and sizes the telemetry subsystem for one System.
type Config struct {
	// Enabled turns on cycle sampling. The registry itself always
	// exists (end-of-run counters cost nothing); Enabled additionally
	// schedules the Sampler on the simulation kernel so time series are
	// captured while the system runs.
	Enabled bool
	// Every is the sampling period in cycles (default DefaultEvery).
	Every sim.Cycle
	// SeriesCap is the per-series ring capacity in samples (default
	// DefaultSeriesCap). Once full the ring keeps the newest samples.
	SeriesCap int
	// MaxEvents bounds the structured violation-event log (default
	// DefaultMaxEvents); further events are counted but not stored.
	MaxEvents int
}

// On returns an enabled configuration with defaults.
func On() Config { return Config{Enabled: true} }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Every < 0 {
		return fmt.Errorf("telemetry: negative sampling period %d", c.Every)
	}
	if c.SeriesCap < 0 {
		return fmt.Errorf("telemetry: negative series capacity %d", c.SeriesCap)
	}
	if c.MaxEvents < 0 {
		return fmt.Errorf("telemetry: negative event capacity %d", c.MaxEvents)
	}
	return nil
}

// WithDefaults fills zero fields with the package defaults.
func (c Config) WithDefaults() Config {
	if c.Every == 0 {
		c.Every = DefaultEvery
	}
	if c.SeriesCap == 0 {
		c.SeriesCap = DefaultSeriesCap
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = DefaultMaxEvents
	}
	return c
}
