package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dvmc/internal/stats"
)

// Snapshot is the serialisable view of a registry at one instant: the
// JSON interchange format shared by the -metrics-out flags, dvmc-stat,
// and the live /metrics endpoint. Prometheus and CSV renderings are
// derived from it, so every encoder sees the same data in the same
// (sorted, deterministic) order.
type Snapshot struct {
	// Cycle is the simulation cycle the snapshot was taken at.
	Cycle uint64 `json:"cycle"`
	// Metrics holds every registered metric, sorted by name.
	Metrics []MetricSnapshot `json:"metrics"`
	// Series holds the tracked time-series rings, sorted by
	// (name, label value slot order).
	Series []SeriesSnapshot `json:"series,omitempty"`
	// Events is the structured violation log in arrival order.
	Events []ViolationEvent `json:"events,omitempty"`
	// EventsDropped counts events discarded after the log filled.
	EventsDropped uint64 `json:"events_dropped,omitempty"`
	// Latency holds per-invariant detection-latency distributions,
	// sorted by invariant name.
	Latency []LatencySnapshot `json:"latency,omitempty"`
}

// MetricSnapshot is one metric: a scalar (one value, empty label) or a
// vector (one value per label value).
type MetricSnapshot struct {
	Name   string        `json:"name"`
	Help   string        `json:"help,omitempty"`
	Kind   string        `json:"kind"`
	Label  string        `json:"label,omitempty"`
	Values []MetricValue `json:"values"`
}

// MetricValue is one slot of a metric.
type MetricValue struct {
	LabelValue string `json:"label_value,omitempty"`
	Value      int64  `json:"value"`
}

// Total sums the metric's slots.
func (m *MetricSnapshot) Total() int64 {
	var t int64
	for _, v := range m.Values {
		t += v.Value
	}
	return t
}

// SeriesSnapshot is one time-series ring, oldest sample first.
type SeriesSnapshot struct {
	Name       string   `json:"name"`
	Label      string   `json:"label,omitempty"`
	LabelValue string   `json:"label_value,omitempty"`
	Cycles     []uint64 `json:"cycles"`
	Values     []int64  `json:"values"`
}

// LatencySnapshot is one invariant's detection-latency distribution.
// Raw observations are kept so downstream tools (dvmc-stat, the
// experiment harness) can re-bucket histograms at any resolution.
type LatencySnapshot struct {
	Invariant string    `json:"invariant"`
	N         int       `json:"n"`
	MeanCyc   float64   `json:"mean_cycles"`
	MinCyc    float64   `json:"min_cycles"`
	MaxCyc    float64   `json:"max_cycles"`
	P50Cyc    float64   `json:"p50_cycles"`
	P99Cyc    float64   `json:"p99_cycles"`
	Values    []float64 `json:"values"`
}

// Sample rebuilds a stats.Sample from the stored observations.
func (l *LatencySnapshot) Sample() *stats.Sample {
	s := &stats.Sample{}
	for _, v := range l.Values {
		s.Add(v)
	}
	return s
}

// Snapshot captures the registry (after refreshing all probes) as of
// the given cycle. The result is deterministic: metrics and latency
// entries are sorted by name, series by (name, slot).
func (r *Registry) Snapshot(cycle uint64) *Snapshot {
	r.Collect()
	snap := &Snapshot{Cycle: cycle, EventsDropped: r.eventsDropped}
	for _, m := range r.Metrics() {
		ms := MetricSnapshot{
			Name:  m.Name(),
			Help:  m.Help(),
			Kind:  m.Kind().String(),
			Label: m.Label(),
		}
		for i := 0; i < m.Len(); i++ {
			ms.Values = append(ms.Values, MetricValue{LabelValue: m.LabelValue(i), Value: m.Value(i)})
		}
		snap.Metrics = append(snap.Metrics, ms)
	}
	series := append([]*Series(nil), r.series...)
	sort.SliceStable(series, func(i, j int) bool {
		if series[i].metric.name != series[j].metric.name {
			return series[i].metric.name < series[j].metric.name
		}
		return series[i].slot < series[j].slot
	})
	for _, s := range series {
		ss := SeriesSnapshot{
			Name:       s.metric.name,
			Label:      s.metric.label,
			LabelValue: s.LabelValue(),
		}
		for i := 0; i < s.Len(); i++ {
			c, v := s.At(i)
			ss.Cycles = append(ss.Cycles, c)
			ss.Values = append(ss.Values, v)
		}
		snap.Series = append(snap.Series, ss)
	}
	snap.Events = append(snap.Events, r.events...)
	for _, il := range r.LatencyByInvariant() {
		snap.Latency = append(snap.Latency, LatencySnapshot{
			Invariant: il.Invariant,
			N:         il.Sample.N(),
			MeanCyc:   il.Sample.Mean(),
			MinCyc:    il.Sample.Min(),
			MaxCyc:    il.Sample.Max(),
			P50Cyc:    il.Sample.Quantile(0.5),
			P99Cyc:    il.Sample.Quantile(0.99),
			Values:    il.Sample.Values(),
		})
	}
	return snap
}

// EncodeJSON writes the snapshot as indented JSON (the stable
// interchange format; dvmc-stat decodes this and re-encodes any other
// format from it).
func (s *Snapshot) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// DecodeSnapshot reads a JSON snapshot, rejecting unknown fields so
// format drift is caught loudly.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Snapshot
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("telemetry: decode snapshot: %w", err)
	}
	return &s, nil
}

// promName converts a metric name to Prometheus conventions:
// "dvmc_" prefix and dots replaced by underscores.
func promName(name string) string {
	return "dvmc_" + strings.ReplaceAll(name, ".", "_")
}

// Prometheus writes the snapshot's metrics in Prometheus text
// exposition format (metrics only; series, events, and latency
// distributions live in the JSON and CSV renderings). Output order is
// sorted-name deterministic.
func (s *Snapshot) Prometheus(w io.Writer) error {
	for i := range s.Metrics {
		m := &s.Metrics[i]
		pn := promName(m.Name)
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", pn, m.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", pn, m.Kind); err != nil {
			return err
		}
		for _, v := range m.Values {
			var err error
			if m.Label == "" {
				_, err = fmt.Fprintf(w, "%s %d\n", pn, v.Value)
			} else {
				_, err = fmt.Fprintf(w, "%s{%s=%q} %d\n", pn, m.Label, v.LabelValue, v.Value)
			}
			if err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE dvmc_snapshot_cycle gauge\ndvmc_snapshot_cycle %d\n", s.Cycle)
	return err
}

// CSV writes the snapshot's metric values in long form:
// metric,kind,label,label_value,value — one row per slot, sorted by
// (name, slot order).
func (s *Snapshot) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "metric,kind,label,label_value,value"); err != nil {
		return err
	}
	for i := range s.Metrics {
		m := &s.Metrics[i]
		for _, v := range m.Values {
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%s,%d\n", m.Name, m.Kind, m.Label, v.LabelValue, v.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// SeriesCSV writes the tracked time series in long form:
// metric,label_value,cycle,value — one row per sample, series in
// (name, slot) order, samples oldest first.
func (s *Snapshot) SeriesCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "metric,label_value,cycle,value"); err != nil {
		return err
	}
	for i := range s.Series {
		sr := &s.Series[i]
		for j := range sr.Cycles {
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%d\n", sr.Name, sr.LabelValue, sr.Cycles[j], sr.Values[j]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Text writes a human-readable report: metrics grouped with per-slot
// breakdowns, then per-invariant detection-latency histograms, then the
// violation-event log.
func (s *Snapshot) Text(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "telemetry snapshot @ cycle %d\n", s.Cycle); err != nil {
		return err
	}
	for i := range s.Metrics {
		m := &s.Metrics[i]
		if m.Label == "" {
			if _, err := fmt.Fprintf(w, "  %-36s %12d\n", m.Name, m.Values[0].Value); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "  %-36s %12d", m.Name, m.Total()); err != nil {
			return err
		}
		parts := make([]string, 0, len(m.Values))
		for _, v := range m.Values {
			parts = append(parts, fmt.Sprintf("%s=%s:%d", m.Label, v.LabelValue, v.Value))
		}
		if _, err := fmt.Fprintf(w, "  (%s)\n", strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	if len(s.Latency) > 0 {
		if _, err := fmt.Fprintln(w, "detection latency (cycles):"); err != nil {
			return err
		}
		for i := range s.Latency {
			l := &s.Latency[i]
			if _, err := fmt.Fprintf(w, "  %-24s n=%d mean=%.1f p50=%.0f p99=%.0f max=%.0f\n",
				l.Invariant, l.N, l.MeanCyc, l.P50Cyc, l.P99Cyc, l.MaxCyc); err != nil {
				return err
			}
			if bins := l.Sample().Histogram(8); bins != nil {
				if _, err := fmt.Fprintf(w, "    %s\n", stats.FormatHistogram(bins)); err != nil {
					return err
				}
			}
		}
	}
	if len(s.Events) > 0 {
		if _, err := fmt.Fprintf(w, "violations (%d recorded, %d dropped):\n", len(s.Events), s.EventsDropped); err != nil {
			return err
		}
		for i := range s.Events {
			ev := &s.Events[i]
			if _, err := fmt.Fprintf(w, "  [%d] %s node=%d addr=%#x detect=%d", i, ev.Invariant, ev.Node, ev.Addr, ev.DetectCycle); err != nil {
				return err
			}
			if ev.InjectCycle != 0 {
				if _, err := fmt.Fprintf(w, " inject=%d latency=%d", ev.InjectCycle, ev.Latency); err != nil {
					return err
				}
			}
			if ev.Detail != "" {
				if _, err := fmt.Fprintf(w, " via %q", ev.Detail); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteSnapshotFile writes the snapshot to path, picking the format by
// extension: .prom (Prometheus text), .csv (metric values), .series.csv
// (time series), anything else JSON. "-" writes JSON to stdout.
func WriteSnapshotFile(s *Snapshot, path string) error {
	if path == "-" {
		return s.EncodeJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	var werr error
	switch {
	case strings.HasSuffix(path, ".series.csv"):
		werr = s.SeriesCSV(f)
	case filepath.Ext(path) == ".csv":
		werr = s.CSV(f)
	case filepath.Ext(path) == ".prom":
		werr = s.Prometheus(f)
	default:
		werr = s.EncodeJSON(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("telemetry: write %s: %w", path, werr)
	}
	return nil
}
