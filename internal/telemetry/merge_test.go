package telemetry

import (
	"bytes"
	"testing"
)

// mergeInput builds a synthetic per-run snapshot the way a campaign
// case would produce one.
func mergeInput(cycle uint64, nodeVals map[string]int64, lat []float64, events []ViolationEvent) *Snapshot {
	s := &Snapshot{Cycle: cycle, Events: events}
	ms := MetricSnapshot{Name: "proc.ops_retired", Help: "operations retired", Kind: "counter", Label: "node"}
	// Deliberately insert slots in reverse order: the merge must
	// canonicalise slot order, not inherit it.
	for i := len(nodeLabelsSorted(nodeVals)) - 1; i >= 0; i-- {
		lv := nodeLabelsSorted(nodeVals)[i]
		ms.Values = append(ms.Values, MetricValue{LabelValue: lv, Value: nodeVals[lv]})
	}
	s.Metrics = append(s.Metrics, ms)
	s.Metrics = append(s.Metrics, MetricSnapshot{
		Name: "checker.violations", Kind: "counter",
		Values: []MetricValue{{Value: int64(len(events))}},
	})
	if len(lat) > 0 {
		ls := LatencySnapshot{Invariant: "uo-mismatch", Values: lat}
		sm := ls.Sample()
		ls.N, ls.MeanCyc = sm.N(), sm.Mean()
		s.Latency = append(s.Latency, ls)
	}
	s.Series = append(s.Series, SeriesSnapshot{Name: "proc.rob_occupancy", Cycles: []uint64{cycle}, Values: []int64{1}})
	return s
}

func nodeLabelsSorted(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	//dvmc:orderinsensitive keys are collected and sorted before use
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func encodeMerged(t *testing.T, snaps ...*Snapshot) []byte {
	t.Helper()
	m, err := MergeSnapshots(snaps...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMergeSnapshotsOrderAndGroupingIndependent is the fabric's
// telemetry contract at the byte level: any order, and any grouping
// (merge-of-merges versus one flat merge), encodes identically.
func TestMergeSnapshotsOrderAndGroupingIndependent(t *testing.T) {
	a := mergeInput(100, map[string]int64{"node0": 5, "node1": 7}, []float64{40, 10},
		[]ViolationEvent{{Invariant: "uo-mismatch", Node: 1, DetectCycle: 90}})
	b := mergeInput(250, map[string]int64{"node0": 2, "node2": 9}, []float64{25},
		[]ViolationEvent{{Invariant: "cet-overlap", Node: 0, DetectCycle: 90}})
	c := mergeInput(30, map[string]int64{"node1": 1}, nil, nil)

	flat := encodeMerged(t, a, b, c)
	for _, perm := range [][]*Snapshot{{a, c, b}, {b, a, c}, {c, b, a}} {
		if got := encodeMerged(t, perm...); !bytes.Equal(got, flat) {
			t.Fatalf("merge is order-dependent:\n%s\nvs\n%s", got, flat)
		}
	}
	ab, err := MergeSnapshots(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeMerged(t, ab, c); !bytes.Equal(got, flat) {
		t.Fatalf("merge is grouping-dependent:\n%s\nvs\n%s", got, flat)
	}
	ca, err := MergeSnapshots(c, a)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeMerged(t, b, ca); !bytes.Equal(got, flat) {
		t.Fatal("merge of merges differs from flat merge")
	}
}

// TestMergeSnapshotsSemantics spot-checks sums, max-cycle, latency
// pooling, event ordering, and series dropping.
func TestMergeSnapshotsSemantics(t *testing.T) {
	a := mergeInput(100, map[string]int64{"node0": 5, "node1": 7}, []float64{40, 10},
		[]ViolationEvent{{Invariant: "uo-mismatch", Node: 1, DetectCycle: 90}})
	b := mergeInput(250, map[string]int64{"node0": 2, "node2": 9}, []float64{25},
		[]ViolationEvent{{Invariant: "cet-overlap", Node: 0, DetectCycle: 90}})
	a.EventsDropped = 3
	m, err := MergeSnapshots(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycle != 250 {
		t.Fatalf("merged cycle = %d, want 250", m.Cycle)
	}
	if m.EventsDropped != 3 {
		t.Fatalf("merged dropped = %d, want 3", m.EventsDropped)
	}
	if len(m.Series) != 0 {
		t.Fatalf("merged snapshot kept %d per-process series", len(m.Series))
	}
	var ops *MetricSnapshot
	for i := range m.Metrics {
		if m.Metrics[i].Name == "proc.ops_retired" {
			ops = &m.Metrics[i]
		}
	}
	if ops == nil {
		t.Fatal("proc.ops_retired missing from merge")
	}
	want := []MetricValue{{LabelValue: "node0", Value: 7}, {LabelValue: "node1", Value: 7}, {LabelValue: "node2", Value: 9}}
	if len(ops.Values) != len(want) {
		t.Fatalf("ops slots = %v, want %v", ops.Values, want)
	}
	for i, w := range want {
		if ops.Values[i] != w {
			t.Fatalf("ops slot %d = %v, want %v", i, ops.Values[i], w)
		}
	}
	if len(m.Latency) != 1 || m.Latency[0].N != 3 || m.Latency[0].MinCyc != 10 || m.Latency[0].MaxCyc != 40 {
		t.Fatalf("merged latency = %+v", m.Latency)
	}
	for i, v := range m.Latency[0].Values {
		if i > 0 && m.Latency[0].Values[i-1] > v {
			t.Fatal("merged latency values not sorted ascending")
		}
	}
	// Equal detect cycles order by invariant name.
	if len(m.Events) != 2 || m.Events[0].Invariant != "cet-overlap" || m.Events[1].Invariant != "uo-mismatch" {
		t.Fatalf("merged events = %+v", m.Events)
	}
}

// TestMergeSnapshotsSchemaConflict: one name, two shapes — refuse.
func TestMergeSnapshotsSchemaConflict(t *testing.T) {
	a := &Snapshot{Metrics: []MetricSnapshot{{Name: "x", Kind: "counter", Values: []MetricValue{{Value: 1}}}}}
	b := &Snapshot{Metrics: []MetricSnapshot{{Name: "x", Kind: "gauge", Values: []MetricValue{{Value: 1}}}}}
	if _, err := MergeSnapshots(a, b); err == nil {
		t.Fatal("conflicting metric kinds must not merge")
	}
}

// TestMergeSnapshotsDisjointLabelVectors: inputs whose label vectors
// share no slots (and metrics present in only one input) union into
// one canonically sorted vector with nothing summed across slots.
func TestMergeSnapshotsDisjointLabelVectors(t *testing.T) {
	a := &Snapshot{Metrics: []MetricSnapshot{
		{Name: "net.msgs", Kind: "counter", Label: "node", Values: []MetricValue{
			{LabelValue: "node1", Value: 11}, {LabelValue: "node0", Value: 10},
		}},
		{Name: "only.in.a", Kind: "counter", Values: []MetricValue{{Value: 1}}},
	}}
	b := &Snapshot{Metrics: []MetricSnapshot{
		{Name: "net.msgs", Kind: "counter", Label: "node", Values: []MetricValue{
			{LabelValue: "node3", Value: 33}, {LabelValue: "node2", Value: 22},
		}},
	}}
	m, err := MergeSnapshots(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var msgs *MetricSnapshot
	onlyA := false
	for i := range m.Metrics {
		switch m.Metrics[i].Name {
		case "net.msgs":
			msgs = &m.Metrics[i]
		case "only.in.a":
			onlyA = true
		}
	}
	if !onlyA {
		t.Fatal("metric present in only one input was dropped")
	}
	if msgs == nil {
		t.Fatal("net.msgs missing from merge")
	}
	want := []MetricValue{
		{LabelValue: "node0", Value: 10}, {LabelValue: "node1", Value: 11},
		{LabelValue: "node2", Value: 22}, {LabelValue: "node3", Value: 33},
	}
	if len(msgs.Values) != len(want) {
		t.Fatalf("disjoint union slots = %v, want %v", msgs.Values, want)
	}
	for i, w := range want {
		if msgs.Values[i] != w {
			t.Fatalf("slot %d = %v, want %v", i, msgs.Values[i], w)
		}
	}
}

// TestMergeSnapshotsEmptySeriesRings: series rings that never sampled
// (empty cycle/value arrays) merge like any other series — dropped —
// without disturbing the rest of the aggregate.
func TestMergeSnapshotsEmptySeriesRings(t *testing.T) {
	a := &Snapshot{
		Cycle:   50,
		Metrics: []MetricSnapshot{{Name: "x", Kind: "counter", Values: []MetricValue{{Value: 4}}}},
		Series:  []SeriesSnapshot{{Name: "proc.rob_occupancy"}},
	}
	b := &Snapshot{
		Series: []SeriesSnapshot{{Name: "proc.rob_occupancy", Cycles: []uint64{}, Values: []int64{}}},
	}
	m, err := MergeSnapshots(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Series) != 0 {
		t.Fatalf("merged snapshot kept %d series from empty rings", len(m.Series))
	}
	if m.Cycle != 50 || len(m.Metrics) != 1 || m.Metrics[0].Values[0].Value != 4 {
		t.Fatalf("empty series rings disturbed the aggregate: %+v", m)
	}
}

// TestMergeSnapshotsLabelSchemaConflict: the other schema axis — same
// name and kind but different label dimensions must refuse to merge,
// as silently unioning "node"-keyed and "kind"-keyed slots would
// fabricate a vector no process ever recorded.
func TestMergeSnapshotsLabelSchemaConflict(t *testing.T) {
	a := &Snapshot{Metrics: []MetricSnapshot{
		{Name: "x", Kind: "counter", Label: "node", Values: []MetricValue{{LabelValue: "node0", Value: 1}}},
	}}
	b := &Snapshot{Metrics: []MetricSnapshot{
		{Name: "x", Kind: "counter", Label: "kind", Values: []MetricValue{{LabelValue: "drop", Value: 1}}},
	}}
	if _, err := MergeSnapshots(a, b); err == nil {
		t.Fatal("conflicting metric labels must not merge")
	}
	// The error must survive either argument order.
	if _, err := MergeSnapshots(b, a); err == nil {
		t.Fatal("conflicting metric labels must not merge (reversed)")
	}
}

// TestMergeSnapshotsEmpty: no inputs (and nil inputs) give a valid
// empty aggregate.
func TestMergeSnapshotsEmpty(t *testing.T) {
	m, err := MergeSnapshots(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycle != 0 || len(m.Metrics) != 0 || len(m.Events) != 0 {
		t.Fatalf("empty merge = %+v", m)
	}
}
