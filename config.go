// Package dvmc is a full reproduction of "Dynamic Verification of Memory
// Consistency in Cache-Coherent Multithreaded Computer Architectures"
// (Meixner & Sorin, DSN 2006): a cycle-level multiprocessor simulator —
// out-of-order cores, MOSI directory and snooping coherence over a
// bandwidth-modelled interconnect, SafetyNet-style backward error
// recovery — with the paper's three DVMC checkers attached: Uniprocessor
// Ordering (verification-cache replay), Allowable Reordering (ordering-
// table sequence checks), and Cache Coherence (epoch tables with CRC-16
// data signatures over 16-bit logical time).
//
// The package is the public façade: build a System from a Config and a
// workload, run it for a number of transactions, and read Results. The
// experiment harness in bench_test.go regenerates every table and figure
// of the paper's evaluation through this API.
package dvmc

import (
	"fmt"

	"dvmc/internal/coherence"
	"dvmc/internal/consistency"
	"dvmc/internal/proc"
	"dvmc/internal/safetynet"
	"dvmc/internal/sim"
	"dvmc/internal/trace"
)

// TraceConfig re-exports the execution-trace capture configuration.
type TraceConfig = trace.Config

// TraceOn returns a capture-enabled trace configuration with defaults.
func TraceOn() TraceConfig { return trace.On() }

// Protocol selects the coherence substrate (paper Table 6 evaluates
// both).
type Protocol uint8

// Supported protocols.
const (
	Directory Protocol = iota + 1
	Snooping
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case Directory:
		return "directory"
	case Snooping:
		return "snooping"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// Model re-exports the consistency models for the public API.
type Model = consistency.Model

// The runtime-selectable SPARC v9 consistency models plus SC.
const (
	SC  = consistency.SC
	TSO = consistency.TSO
	PSO = consistency.PSO
	RMO = consistency.RMO
)

// Models lists the four models in evaluation order.
var Models = []Model{SC, TSO, PSO, RMO}

// ClockGHz is the simulated core clock; it converts the paper's GB/s
// link bandwidths to bytes/cycle.
const ClockGHz = 2.0

// Cycle re-exports the simulated-time unit for public configuration.
type Cycle = sim.Cycle

// DVMCConfig toggles the three checkers independently, enabling the
// component-breakdown experiment of Figure 5 (SN, SN+DVCC, SN+DVUO,
// full DVMC).
type DVMCConfig struct {
	UniprocessorOrdering bool // verification stage + VC replay
	AllowableReordering  bool // sequence-number ordering checks
	CacheCoherence       bool // CET/MET epoch verification
}

// Full enables all three checkers.
func Full() DVMCConfig {
	return DVMCConfig{UniprocessorOrdering: true, AllowableReordering: true, CacheCoherence: true}
}

// Off disables every checker (the unprotected baseline).
func Off() DVMCConfig { return DVMCConfig{} }

// Any reports whether any checker is enabled.
func (d DVMCConfig) Any() bool {
	return d.UniprocessorOrdering || d.AllowableReordering || d.CacheCoherence
}

// Config describes a complete system. DefaultConfig mirrors the paper's
// Tables 6 and 7; ScaledConfig shrinks the geometry so whole-program
// simulations finish quickly while preserving miss behaviour.
type Config struct {
	Nodes    int
	Protocol Protocol
	Model    Model

	// LinkGBps is the interconnect link bandwidth (paper sweeps 1–3 GB/s
	// in Figure 8; 2.5 GB/s is the default).
	LinkGBps float64
	// HopLatency is the per-hop pipeline latency of the torus.
	HopLatency sim.Cycle

	Memory coherence.Config // cache geometry and latencies (Table 6)
	Proc   proc.Config      // core parameters (Table 7)

	DVMC      DVMCConfig
	SafetyNet bool
	SNConfig  safetynet.Config

	// Trace captures per-processor commit/perform events into a binary
	// execution trace that internal/oracle can re-verify offline
	// (differential verification of the online checkers).
	Trace TraceConfig

	// Telemetry sizes the metric registry and, when Enabled, schedules
	// the cycle-driven sampler that captures occupancy time series.
	Telemetry TelemetryConfig

	// Spans enables the causal span recorder: ring-buffered coherence-
	// transaction, fault-flight, and phase-profiling spans exportable as
	// a deterministic binary dump (see spans.go and internal/span).
	Spans SpanConfig

	// Seed drives every pseudo-random choice; perturbing it provides the
	// paper's "small pseudo-random perturbations" across repeated runs.
	Seed uint64

	// StopOnViolation ends Run when a checker reports a violation
	// (injection campaigns).
	StopOnViolation bool
}

// DefaultConfig returns the paper's system configuration: 8 nodes,
// 64 KB L1s, a 4 MB L2 (the coherence point), 2.5 GB/s links, TSO with
// full DVMC and SafetyNet.
func DefaultConfig() Config {
	return Config{
		Nodes:      8,
		Protocol:   Directory,
		Model:      TSO,
		LinkGBps:   2.5,
		HopLatency: 15,
		Memory: coherence.Config{
			Nodes:  8,
			L1Sets: 256, L1Ways: 4, // 64 KB / 64 B
			L2Sets: 4096, L2Ways: 16, // 4 MB
			L1Latency:  2,
			L2Latency:  13,
			MemLatency: 160,
			MSHRs:      16,
			CacheECC:   true,
		},
		Proc:      proc.DefaultConfig(),
		DVMC:      Full(),
		SafetyNet: true,
		SNConfig:  safetynet.DefaultConfig(),
		Seed:      1,
	}
}

// ScaledConfig returns a reduced geometry for whole-program runs (the
// workload footprints in internal/workload are scaled to match): caches
// small enough to miss, checkpoint interval short enough to exercise
// recovery, same latency ratios as DefaultConfig.
func ScaledConfig() Config {
	cfg := DefaultConfig()
	cfg.Memory.L1Sets, cfg.Memory.L1Ways = 64, 2  // 8 KB
	cfg.Memory.L2Sets, cfg.Memory.L2Ways = 512, 4 // 128 KB
	cfg.Memory.CacheECC = false                   // faster; ECC covered by unit tests
	cfg.SNConfig = safetynet.Config{Interval: 10000, Keep: 4}
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1 || c.Nodes > 64:
		return fmt.Errorf("dvmc: Nodes = %d, need 1..64", c.Nodes)
	case c.Protocol != Directory && c.Protocol != Snooping:
		return fmt.Errorf("dvmc: unknown protocol %v", c.Protocol)
	case c.Model < SC || c.Model > RMO:
		return fmt.Errorf("dvmc: unsupported model %v", c.Model)
	case c.LinkGBps <= 0:
		return fmt.Errorf("dvmc: LinkGBps = %v", c.LinkGBps)
	}
	if c.Memory.Nodes != c.Nodes {
		return fmt.Errorf("dvmc: Memory.Nodes %d != Nodes %d", c.Memory.Nodes, c.Nodes)
	}
	if err := c.Memory.Validate(); err != nil {
		return err
	}
	if err := c.Proc.Validate(); err != nil {
		return err
	}
	if c.SafetyNet {
		if err := c.SNConfig.Validate(); err != nil {
			return err
		}
	}
	if err := c.Trace.Validate(); err != nil {
		return err
	}
	if err := c.Telemetry.Validate(); err != nil {
		return err
	}
	if err := c.Spans.Validate(); err != nil {
		return err
	}
	return nil
}

// WithNodes returns a copy for a different node count (Figure 9 sweep).
func (c Config) WithNodes(n int) Config {
	c.Nodes = n
	c.Memory.Nodes = n
	return c
}

// WithModel returns a copy for a different consistency model.
func (c Config) WithModel(m Model) Config {
	c.Model = m
	return c
}

// WithProtocol returns a copy for a different coherence protocol.
func (c Config) WithProtocol(p Protocol) Config {
	c.Protocol = p
	return c
}

// WithLinkGBps returns a copy with different link bandwidth (Figure 8).
func (c Config) WithLinkGBps(g float64) Config {
	c.LinkGBps = g
	return c
}

// WithSeed returns a copy with a perturbed seed.
func (c Config) WithSeed(s uint64) Config {
	c.Seed = s
	return c
}

// WithTrace returns a copy with execution-trace capture configured.
func (c Config) WithTrace(t TraceConfig) Config {
	c.Trace = t
	return c
}

// TraceMeta returns the trace header a system built from this
// configuration stamps on its captured execution trace. External
// consumers that check events live (a streaming oracle attached via
// TraceConfig.Sink) need the same header to judge them against.
func (c Config) TraceMeta() trace.Meta {
	return trace.Meta{
		Version:  trace.Version,
		Nodes:    c.Nodes,
		Model:    c.Model,
		Protocol: uint8(c.Protocol - 1), // 0 directory, 1 snooping
		Seed:     c.Seed,
	}
}

// WithTelemetry returns a copy with telemetry sampling configured.
func (c Config) WithTelemetry(t TelemetryConfig) Config {
	c.Telemetry = t
	return c
}

// bytesPerCycle converts the configured link bandwidth.
func (c Config) bytesPerCycle() float64 { return c.LinkGBps / ClockGHz }
