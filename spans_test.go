package dvmc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"dvmc/internal/span"
)

// spanTestConfig is a small, fast geometry with span recording on.
func spanTestConfig(p Protocol, seed uint64) Config {
	return ScaledConfig().WithNodes(4).WithProtocol(p).WithSeed(seed).WithSpans(SpansOn())
}

// runSpanDump builds a fresh system, runs it, and returns the binary
// span dump.
func runSpanDump(t *testing.T, cfg Config, cycles uint64) []byte {
	t.Helper()
	s, err := NewSystem(cfg, Uniform(128, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	s.RunCycles(cycles)
	dump, err := s.SpanBytes()
	if err != nil {
		t.Fatal(err)
	}
	return dump
}

// TestSpanDumpDeterministic pins the doctrine the whole observability
// layer rests on: a span dump is a pure function of (Config, Workload,
// Seed). Two independently built systems must produce byte-identical
// dumps for every seed × protocol combination, and the dump must decode
// and re-encode to the same bytes.
func TestSpanDumpDeterministic(t *testing.T) {
	for _, p := range []Protocol{Directory, Snooping} {
		for _, seed := range []uint64{1, 7, 42} {
			t.Run(fmt.Sprintf("%v/seed%d", p, seed), func(t *testing.T) {
				cfg := spanTestConfig(p, seed)
				a := runSpanDump(t, cfg, 20000)
				b := runSpanDump(t, cfg, 20000)
				if !bytes.Equal(a, b) {
					t.Fatalf("span dumps differ across identical runs (%d vs %d bytes)", len(a), len(b))
				}
				meta, spans, err := span.Decode(a)
				if err != nil {
					t.Fatal(err)
				}
				if meta != cfg.SpanMeta() {
					t.Fatalf("decoded meta %+v != %+v", meta, cfg.SpanMeta())
				}
				if len(spans) == 0 {
					t.Fatal("no spans recorded in 20k cycles")
				}
				var txn, phase int
				for i := range spans {
					switch spans[i].Family {
					case span.FamilyTxn:
						txn++
					case span.FamilyPhase:
						phase++
					}
				}
				if txn == 0 || phase == 0 {
					t.Fatalf("want both txn and phase spans, got txn=%d phase=%d", txn, phase)
				}
				re, err := span.Encode(meta, spans)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(a, re) {
					t.Fatal("decode→encode is not byte-identical")
				}
			})
		}
	}
}

// TestSpanHopsAttach checks the network observer actually lands
// protocol hops inside transaction spans (a system-level guard: if the
// (node, addr) keying drifted from the MSHR keying, every hop would be
// an orphan and the timeline would show bare spans).
func TestSpanHopsAttach(t *testing.T) {
	for _, p := range []Protocol{Directory, Snooping} {
		t.Run(p.String(), func(t *testing.T) {
			cfg := spanTestConfig(p, 3)
			s, err := NewSystem(cfg, Uniform(128, 0.7))
			if err != nil {
				t.Fatal(err)
			}
			s.RunCycles(20000)
			spans, err := s.Spans()
			if err != nil {
				t.Fatal(err)
			}
			var withHops int
			for i := range spans {
				if spans[i].Family == span.FamilyTxn && len(spans[i].Events) > 0 {
					withHops++
				}
			}
			if withHops == 0 {
				t.Fatal("no transaction span carries any protocol hop")
			}
			st := s.SpanStats()
			if st.Events == 0 {
				t.Fatal("recorder stored no child events")
			}
		})
	}
}

// TestSpanFaultFlight checks an injection run produces a fault flight
// recording whose verdict matches the injection result.
func TestSpanFaultFlight(t *testing.T) {
	cfg := spanTestConfig(Directory, 5)
	inj := Injection{Kind: FaultMsgDrop, Node: 1, Cycle: 4000}
	res, s, err := RunInjectionSystem(cfg, Uniform(128, 0.7), inj, 60000)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := s.Spans()
	if err != nil {
		t.Fatal(err)
	}
	var flight *span.Span
	for i := range spans {
		if spans[i].Family == span.FamilyFault {
			flight = &spans[i]
		}
	}
	if flight == nil {
		t.Fatal("no fault flight recording")
	}
	if got := FaultKind(flight.Kind); got != inj.Kind {
		t.Fatalf("flight kind %v != injected %v", got, inj.Kind)
	}
	want := span.OutcomeEscape
	switch {
	case !res.Applied:
		want = span.OutcomeNotApplied
	case res.Detected:
		want = span.OutcomeDetected
	case res.Masked:
		want = span.OutcomeMasked
	}
	if flight.Outcome != want {
		t.Fatalf("flight outcome %v, injection verdict implies %v (result %+v)", flight.Outcome, want, res)
	}
	if res.Applied && len(flight.Events) == 0 {
		t.Fatal("applied fault's flight recording has no transitions")
	}
}

// TestSpanChromeExport checks the system-level dump renders to strict,
// deterministic Chrome trace-event JSON.
func TestSpanChromeExport(t *testing.T) {
	cfg := spanTestConfig(Directory, 2)
	dump := runSpanDump(t, cfg, 20000)
	meta, spans, err := span.Decode(dump)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := span.WriteChrome(&buf, meta, spans, nil); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := dec.Decode(&out); err != nil {
		t.Fatalf("chrome export is not strict JSON: %v", err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
}

// benchmarkSystem runs a fixed slice of simulation per iteration; the
// spans-on/off pair quantifies the recorder's overhead (BENCH_PR10).
func benchmarkSystem(b *testing.B, cfg Config) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Construction — including the recorder's one-time ring
		// preallocation — is untimed; the benchmark measures the
		// steady-state cycle loop, which is where recording overhead
		// would tax a soak run.
		b.StopTimer()
		s, err := NewSystem(cfg, Uniform(128, 0.7))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		s.RunCycles(10000)
	}
}

func BenchmarkSystemSpansOff(b *testing.B) {
	benchmarkSystem(b, ScaledConfig().WithNodes(4).WithSeed(1))
}

func BenchmarkSystemSpansOn(b *testing.B) {
	benchmarkSystem(b, ScaledConfig().WithNodes(4).WithSeed(1).WithSpans(SpansOn()))
}
