module dvmc

go 1.22
