package dvmc

import (
	"fmt"

	"dvmc/internal/coherence"
	"dvmc/internal/mem"
	"dvmc/internal/network"
	"dvmc/internal/sim"
	"dvmc/internal/span"
)

// SpanConfig re-exports the span recorder configuration.
type SpanConfig = span.Config

// SpansOn returns an enabled span configuration with defaults (ring
// capacity span.DefaultCap, phase sampling every span.DefaultPhaseEvery
// cycles).
func SpansOn() SpanConfig { return span.On() }

// SpanMeta returns the header a system built from this configuration
// stamps on its span dump; it mirrors TraceMeta so the two artifact
// kinds of one run identify the same (Config, Workload, Seed) point.
func (c Config) SpanMeta() span.Meta {
	return span.Meta{
		Nodes:    c.Nodes,
		Model:    uint8(c.Model),
		Protocol: uint8(c.Protocol - 1), // 0 directory, 1 snooping
		Seed:     c.Seed,
	}
}

// WithSpans returns a copy with span recording configured.
func (c Config) WithSpans(sc SpanConfig) Config {
	c.Spans = sc
	return c
}

// txnTap adapts one controller's MSHR lifecycle into transaction spans:
// a span opens when the miss issues onto the interconnect and closes
// when the MSHR retires. The in-place S→M upgrade closes the read span
// as upgraded and continues in a fresh write span.
type txnTap struct {
	s    *System
	node int32
}

func (t txnTap) TxnBegin(b mem.BlockAddr, wantM bool) {
	kind := span.TxnRead
	if wantM {
		kind = span.TxnWrite
	}
	t.s.spanRec.TxnBegin(t.node, uint64(b), kind, t.s.kernel.Now())
}

func (t txnTap) TxnEnd(b mem.BlockAddr, upgraded bool) {
	out := span.OutcomeDone
	if upgraded {
		out = span.OutcomeUpgraded
	}
	t.s.spanRec.TxnEnd(t.node, uint64(b), out, t.s.kernel.Now())
}

// hopOf classifies a protocol message for span attachment: its child-
// event label, the block it concerns, and the requesting node when the
// payload names one (-1 otherwise). ok is false for non-protocol
// traffic (informs, SafetyNet log records).
func hopOf(m *network.Message) (label span.Label, addr uint64, requestor int32, ok bool) {
	requestor = -1
	switch p := m.Payload.(type) {
	case coherence.MsgGetS:
		return span.LabelGetS, uint64(p.Block), int32(p.Requestor), true
	case coherence.MsgGetM:
		return span.LabelGetM, uint64(p.Block), int32(p.Requestor), true
	case coherence.MsgPutS:
		return span.LabelPutS, uint64(p.Block), int32(p.Requestor), true
	case coherence.MsgPutM:
		return span.LabelPutM, uint64(p.Block), int32(p.Requestor), true
	case coherence.MsgData:
		return span.LabelData, uint64(p.Block), requestor, true
	case coherence.MsgPermM:
		return span.LabelPermM, uint64(p.Block), requestor, true
	case coherence.MsgInv:
		return span.LabelInv, uint64(p.Block), requestor, true
	case coherence.MsgInvAck:
		return span.LabelInvAck, uint64(p.Block), requestor, true
	case coherence.MsgRecall:
		return span.LabelRecall, uint64(p.Block), requestor, true
	case coherence.MsgRecallAck:
		return span.LabelRecallAck, uint64(p.Block), requestor, true
	case coherence.MsgWBAck:
		return span.LabelWBAck, uint64(p.Block), requestor, true
	case coherence.MsgUnblock:
		return span.LabelUnblock, uint64(p.Block), int32(p.From), true
	case coherence.MsgSnoop:
		return span.LabelSnoop, uint64(p.Block), int32(p.Requestor), true
	case coherence.MsgSnoopData:
		return span.LabelSnoopData, uint64(p.Block), requestor, true
	case coherence.MsgSnoopWB:
		return span.LabelSnoopWB, uint64(p.Block), int32(p.From), true
	default:
		return 0, 0, -1, false
	}
}

// spanHop is the network delivery observer: it attaches each protocol
// hop to the open transaction span it serves. A payload that names its
// requestor is attributed only to that node's open span — falling back
// to Dst/Src there would both waste probes on the hot path and risk
// attaching the hop to an unrelated transaction open on the same block
// at another node. Block-only payloads are probed against the
// destination and then the source node, covering grants arriving at
// the requestor and acks returning to it. Hops that match no open span
// (sharer-side invalidations, clean evictions with no MSHR) are
// counted as orphans, not errors.
func (s *System) spanHop(m *network.Message, at sim.Cycle) {
	label, addr, requestor, ok := hopOf(m)
	if !ok {
		return
	}
	a, b := uint64(m.Src), uint64(m.Dst)
	rec := s.spanRec
	if requestor >= 0 {
		if !rec.TxnEvent(requestor, addr, label, at, a, b) {
			rec.Orphan()
		}
		return
	}
	if rec.TxnEvent(int32(m.Dst), addr, label, at, a, b) {
		return
	}
	if rec.TxnEvent(int32(m.Src), addr, label, at, a, b) {
		return
	}
	rec.Orphan()
}

// phaseSampler emits the per-component cycle-attribution slices: every
// PhaseEvery cycles it reads each subsystem's monotonic work counter
// and records the delta as one FamilyPhase span per component. It is
// registered on the kernel after every other component, so a slice
// observes the state after all components ticked its final cycle.
type phaseSampler struct {
	s     *System
	every sim.Cycle
	last  sim.Cycle
	prev  [4]uint64
}

var _ sim.Clockable = (*phaseSampler)(nil)

func (p *phaseSampler) Tick(now sim.Cycle) {
	if now == 0 || now%p.every != 0 {
		return
	}
	cur := [4]uint64{p.s.procWork(), p.s.coherenceWork(), p.s.networkWork(), p.s.checkerWork()}
	for comp := uint8(0); comp < 4; comp++ {
		p.s.spanRec.Phase(comp, p.last, now, cur[comp]-p.prev[comp])
	}
	p.prev = cur
	p.last = now
}

// procWork returns total operations retired across cores.
func (s *System) procWork() uint64 {
	var n uint64
	for _, c := range s.cpus {
		n += c.Stats().OpsRetired
	}
	return n
}

// coherenceWork returns total coherence transactions issued.
func (s *System) coherenceWork() uint64 {
	var n uint64
	for _, c := range s.ctrls {
		n += c.Stats().TransactionsIssued
	}
	return n
}

// networkWork returns total bytes carried on all links.
func (s *System) networkWork() uint64 {
	n := s.torus.TotalBytes()
	if s.bcast != nil {
		n += s.bcast.TotalBytes()
	}
	return n
}

// checkerWork returns total informs folded into the memory epoch
// tables (0 when the coherence checker is off).
func (s *System) checkerWork() uint64 {
	var n uint64
	for _, m := range s.met {
		n += m.Stats().InformsProcessed
	}
	return n
}

// buildSpans installs the span recorder and its taps: per-controller
// transaction listeners, the network delivery observer, the SafetyNet
// checkpoint/recovery annotations, and the phase sampler. Called at the
// end of NewSystem, after buildTelemetry; with Config.Spans disabled it
// installs nothing and the only residual cost is a nil observer check
// on the network delivery path.
func (s *System) buildSpans(cfg Config) {
	if !cfg.Spans.Enabled {
		return
	}
	s.spanRec = span.NewRecorder(cfg.Spans.WithDefaults())
	for n, ctrl := range s.ctrls {
		ctrl.SetTxnListener(txnTap{s: s, node: int32(n)})
	}
	s.torus.SetObserver(s.spanHop)
	if s.bcast != nil {
		s.bcast.SetObserver(s.spanHop)
	}
	if s.snMgr != nil {
		s.snMgr.SetCheckpointListener(func(seq uint64, at sim.Cycle) {
			s.spanRec.FaultEvent(span.LabelCheckpoint, at, seq, 0)
		})
		s.snMgr.SetRecoveryListener(func(seq uint64, cpCycle, errorCycle sim.Cycle) {
			s.spanRec.FaultEvent(span.LabelRecovery, errorCycle, seq, uint64(cpCycle))
		})
	}
	s.kernel.Register(&phaseSampler{s: s, every: cfg.Spans.WithDefaults().PhaseEvery})
}

// SpanRecording reports whether this system records causal spans.
func (s *System) SpanRecording() bool { return s.spanRec != nil }

// SpanStats returns recorder accounting (zero value when spans are
// off).
func (s *System) SpanStats() span.Stats {
	if s.spanRec == nil {
		return span.Stats{}
	}
	return s.spanRec.Stats()
}

// Spans drains the recorder: a sorted, deep-copied snapshot of the
// retained spans as of the current cycle. Non-destructive and
// repeatable; still-open spans are stamped with the current cycle as
// their end. Returns an error when span recording was not enabled.
func (s *System) Spans() ([]span.Span, error) {
	if s.spanRec == nil {
		return nil, fmt.Errorf("dvmc: span recording not enabled (set Config.Spans)")
	}
	return s.spanRec.Drain(s.kernel.Now()), nil
}

// SpanBytes drains the recorder and returns the deterministic binary
// span dump (decode with internal/span or render with dvmc-stat
// timeline). Returns an error when span recording was not enabled.
func (s *System) SpanBytes() ([]byte, error) {
	spans, err := s.Spans()
	if err != nil {
		return nil, err
	}
	return span.Encode(s.cfg.SpanMeta(), spans)
}
