package dvmc

import (
	"testing"
)

// smallConfig is a fast test geometry.
func smallConfig() Config {
	cfg := ScaledConfig()
	cfg.Nodes = 4
	cfg.Memory.Nodes = 4
	cfg.Proc.MembarInjectionInterval = 20000
	return cfg
}

// smallWorkload shrinks footprints for quick runs.
func smallWorkload() Workload {
	w := Uniform(128, 0.7)
	return w
}

func TestNewSystemValidates(t *testing.T) {
	if _, err := NewSystem(Config{}, smallWorkload()); err == nil {
		t.Error("zero config accepted")
	}
	bad := smallConfig()
	bad.Memory.Nodes = 2 // mismatch
	if _, err := NewSystem(bad, smallWorkload()); err == nil {
		t.Error("node mismatch accepted")
	}
}

func TestSystemRunsTransactions(t *testing.T) {
	s, err := NewSystem(smallConfig(), smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(100, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions < 100 {
		t.Errorf("transactions = %d, want >= 100", res.Transactions)
	}
	if res.Cycles == 0 || res.OpsRetired == 0 {
		t.Errorf("empty results: %v", res)
	}
}

func TestSystemDeterministic(t *testing.T) {
	run := func() Results {
		s, err := NewSystem(smallConfig(), smallWorkload())
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(50, 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.OpsRetired != b.OpsRetired || a.L1Misses != b.L1Misses {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

func TestSystemSeedPerturbs(t *testing.T) {
	mk := func(seed uint64) Results {
		cfg := smallConfig().WithSeed(seed)
		s, err := NewSystem(cfg, smallWorkload())
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(50, 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if mk(1).Cycles == mk(2).Cycles {
		t.Log("warning: different seeds gave identical cycle counts (possible, but unlikely)")
	}
}

// TestCleanRunsNoViolations is the central integration property: in
// fault-free execution, DVMC must never report a violation — across all
// four consistency models, both protocols, and all five workloads.
func TestCleanRunsNoViolations(t *testing.T) {
	for _, protocol := range []Protocol{Directory, Snooping} {
		for _, model := range Models {
			for _, w := range Workloads() {
				name := protocol.String() + "/" + model.String() + "/" + w.Name
				t.Run(name, func(t *testing.T) {
					cfg := smallConfig().WithProtocol(protocol).WithModel(model)
					s, err := NewSystem(cfg, w)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := s.Run(60, 8_000_000); err != nil {
						t.Fatalf("run: %v", err)
					}
					s.DrainCheckers()
					if vs := s.Violations(); len(vs) != 0 {
						t.Fatalf("clean run produced %d violations; first: %v", len(vs), vs[0])
					}
				})
			}
		}
	}
}

func TestSystemBudgetError(t *testing.T) {
	s, err := NewSystem(smallConfig(), smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1_000_000, 100); err == nil {
		t.Error("impossible budget did not error")
	}
}

func TestDVMCInformTrafficFlows(t *testing.T) {
	s, err := NewSystem(smallConfig(), smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(100, 4_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Informs == 0 {
		t.Error("no Inform-Epoch messages generated")
	}
	if res.InformsProcessed == 0 {
		t.Error("MET processed no informs")
	}
	if res.MaxLinkByClass == nil {
		t.Fatal("no class breakdown")
	}
}

func TestSafetyNetCheckpointsTaken(t *testing.T) {
	s, err := NewSystem(smallConfig(), smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	res := s.RunCycles(50_000)
	if res.Checkpoints < 4 {
		t.Errorf("checkpoints = %d, want >= 4 at 10k interval over 50k cycles", res.Checkpoints)
	}
	if res.LogMessages == 0 {
		t.Error("no SafetyNet log traffic")
	}
}

func TestSafetyNetRecoveryResumesCorrectly(t *testing.T) {
	// Run, recover to a checkpoint mid-run, and verify the system still
	// completes transactions without violations afterwards.
	cfg := smallConfig()
	s, err := NewSystem(cfg, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(60, 4_000_000); err != nil {
		t.Fatal(err)
	}
	errorCycle := s.Now() - 5000
	if !s.Recover(errorCycle) {
		t.Fatal("recovery failed despite live checkpoints")
	}
	if _, err := s.Run(60, 8_000_000); err != nil {
		t.Fatalf("post-recovery run: %v", err)
	}
	s.DrainCheckers()
	if vs := s.Violations(); len(vs) != 0 {
		t.Fatalf("post-recovery violations: %v", vs[0])
	}
}

func TestRecoveryAcrossModelsAndProtocols(t *testing.T) {
	for _, protocol := range []Protocol{Directory, Snooping} {
		for _, model := range []Model{TSO, RMO} {
			name := protocol.String() + "/" + model.String()
			t.Run(name, func(t *testing.T) {
				cfg := smallConfig().WithProtocol(protocol).WithModel(model)
				s, err := NewSystem(cfg, OLTP())
				if err != nil {
					t.Fatal(err)
				}
				if _, err := s.Run(40, 8_000_000); err != nil {
					t.Fatal(err)
				}
				if !s.Recover(s.Now() - 1) {
					t.Fatal("recovery failed")
				}
				if _, err := s.Run(40, 8_000_000); err != nil {
					t.Fatalf("post-recovery: %v", err)
				}
				s.DrainCheckers()
				if vs := s.Violations(); len(vs) != 0 {
					t.Fatalf("violations after recovery: %v", vs[0])
				}
			})
		}
	}
}

func TestBaseSystemWithoutDVMCRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.DVMC = Off()
	cfg.SafetyNet = false
	s, err := NewSystem(cfg, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(100, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Informs != 0 || res.Checkpoints != 0 {
		t.Errorf("base system generated verification state: %v", res)
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
	if err := ScaledConfig().Validate(); err != nil {
		t.Errorf("ScaledConfig invalid: %v", err)
	}
}

func TestConfigWiths(t *testing.T) {
	cfg := DefaultConfig().WithNodes(4).WithModel(RMO).WithProtocol(Snooping).
		WithLinkGBps(1.0).WithSeed(9)
	if cfg.Nodes != 4 || cfg.Memory.Nodes != 4 || cfg.Model != RMO ||
		cfg.Protocol != Snooping || cfg.LinkGBps != 1.0 || cfg.Seed != 9 {
		t.Errorf("With* chain wrong: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("chained config invalid: %v", err)
	}
}

func TestProtocolString(t *testing.T) {
	if Directory.String() != "directory" || Snooping.String() != "snooping" {
		t.Error("Protocol strings wrong")
	}
}
