package dvmc

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"dvmc/internal/stats"
)

// ExperimentOpts sizes an experiment run. The paper runs each simulation
// ten times with small pseudo-random perturbations; Repetitions controls
// that here.
type ExperimentOpts struct {
	Transactions uint64 // transactions per run (across all nodes)
	MaxCycles    uint64 // per-run cycle budget
	Repetitions  int    // perturbed repetitions per configuration
	SeedBase     uint64

	// Workers bounds the harness's worker pool; 1 runs serially and <=0
	// picks min(GOMAXPROCS, jobs) — oversubscribing a small host makes
	// parallel runs slower than serial, so the default never exceeds the
	// schedulable parallelism. Every simulation is a pure function of its
	// (Config, Workload, opts) job and workers write only their own
	// result slots, so the assembled tables are byte-identical at any
	// worker count.
	Workers int
}

// DefaultExperimentOpts returns a configuration sized for minutes-scale
// regeneration of every figure.
func DefaultExperimentOpts() ExperimentOpts {
	return ExperimentOpts{Transactions: 150, MaxCycles: 40_000_000, Repetitions: 3, SeedBase: 100}
}

// QuickExperimentOpts returns a configuration for smoke tests.
func QuickExperimentOpts() ExperimentOpts {
	return ExperimentOpts{Transactions: 40, MaxCycles: 20_000_000, Repetitions: 1, SeedBase: 100}
}

// Cell is one mean ± stddev table entry.
type Cell struct {
	Mean float64
	Std  float64
}

// Table is a printable experiment result (one per paper figure).
type Table struct {
	Title string
	Note  string
	Rows  []string
	Cols  []string
	Cells [][]Cell
}

// String renders the table.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "  (%s)\n", t.Note)
	}
	w := 12
	fmt.Fprintf(&b, "%-10s", "")
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "%*s", w+8, c)
	}
	b.WriteString("\n")
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-10s", r)
		for j := range t.Cols {
			c := t.Cells[i][j]
			fmt.Fprintf(&b, "%*s", w+8, fmt.Sprintf("%.3f ±%.3f", c.Mean, c.Std))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// parallelFor runs fn(0..n-1) on min(workers, n) goroutines; workers<=0
// sizes the pool to min(GOMAXPROCS, n). Callers must make fn(i) write
// only slot i of their outputs; under that contract results are
// independent of worker count and schedule. The root package sits
// outside the dvmc-lint determinism allowlist precisely for
// harness-level concurrency like this: each simulation is a sealed
// deterministic machine, and the harness only farms them out.
func parallelFor(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// sampleJob is one runtimeSample request in a figure's job matrix.
type sampleJob struct {
	cfg Config
	w   Workload
}

// sampleResult is the disjoint slot a worker fills for one sampleJob.
type sampleResult struct {
	sample  *stats.Sample
	results []Results
	err     error
}

// runSampleJobs executes the job matrix with opts.Workers workers and
// returns the per-job results in job order. The first error (in job
// order, regardless of completion order) aborts the caller.
func runSampleJobs(jobs []sampleJob, opts ExperimentOpts) ([]sampleResult, error) {
	out := make([]sampleResult, len(jobs))
	parallelFor(len(jobs), opts.Workers, func(i int) {
		out[i].sample, out[i].results, out[i].err = runtimeSample(jobs[i].cfg, jobs[i].w, opts)
	})
	for i := range out {
		if out[i].err != nil {
			return out, out[i].err
		}
	}
	return out, nil
}

// runtimeSample measures the runtime (cycles to complete the transaction
// quota) over perturbed repetitions.
func runtimeSample(cfg Config, w Workload, opts ExperimentOpts) (*stats.Sample, []Results, error) {
	sample := &stats.Sample{}
	var all []Results
	for rep := 0; rep < opts.Repetitions; rep++ {
		s, err := NewSystem(cfg.WithSeed(opts.SeedBase+uint64(rep)), w)
		if err != nil {
			return nil, nil, err
		}
		res, err := s.Run(opts.Transactions, opts.MaxCycles)
		if err != nil {
			return nil, nil, fmt.Errorf("%s/%v/%v rep %d: %w", w.Name, cfg.Protocol, cfg.Model, rep, err)
		}
		s.DrainCheckers()
		if v := s.Violations(); len(v) != 0 {
			return nil, nil, fmt.Errorf("%s/%v/%v rep %d: unexpected violation %v", w.Name, cfg.Protocol, cfg.Model, rep, v[0])
		}
		sample.Add(float64(res.Cycles))
		all = append(all, res)
	}
	return sample, all, nil
}

// baseConfig returns the experiment baseline (unprotected: no DVMC, no
// SafetyNet) on the scaled geometry.
func baseConfig(protocol Protocol, model Model) Config {
	cfg := ScaledConfig().WithProtocol(protocol).WithModel(model)
	cfg.DVMC = Off()
	cfg.SafetyNet = false
	return cfg
}

// protectConfig returns the fully protected system (DVMC + SafetyNet).
func protectConfig(protocol Protocol, model Model) Config {
	cfg := ScaledConfig().WithProtocol(protocol).WithModel(model)
	cfg.DVMC = Full()
	cfg.SafetyNet = true
	return cfg
}

// FigureRuntimes regenerates Figure 3 (directory) or Figure 4 (snooping):
// runtimes of the unprotected base and the full DVMC system under each
// consistency model, normalised per workload to the unprotected SC run.
func FigureRuntimes(protocol Protocol, opts ExperimentOpts) (Table, error) {
	t := Table{
		Title: fmt.Sprintf("Figure %d: runtime normalised to SC-base (%v system)", map[Protocol]int{Directory: 3, Snooping: 4}[protocol], protocol),
		Note:  "lower is faster; Base = unprotected, DVMC = full verification + SafetyNet",
	}
	for _, m := range Models {
		t.Cols = append(t.Cols, m.String()+"-base", m.String()+"-dvmc")
	}
	// Job matrix: per workload, a base and a protected sample per model
	// (SC's base doubles as the normalisation reference).
	ws := Workloads()
	stride := 2 * len(Models)
	jobs := make([]sampleJob, 0, len(ws)*stride)
	for _, w := range ws {
		for _, m := range Models {
			jobs = append(jobs,
				sampleJob{baseConfig(protocol, m), w},
				sampleJob{protectConfig(protocol, m), w})
		}
	}
	res, err := runSampleJobs(jobs, opts)
	if err != nil {
		return t, err
	}
	for wi, w := range ws {
		t.Rows = append(t.Rows, w.Name)
		ref := res[wi*stride].sample.Mean() // Models[0] is SC
		var row []Cell
		for mi := range Models {
			base := res[wi*stride+2*mi].sample
			prot := res[wi*stride+2*mi+1].sample
			baseN := stats.NormalizeBy(base, ref)
			protN := stats.NormalizeBy(prot, ref)
			row = append(row,
				Cell{Mean: baseN.Mean(), Std: baseN.StdDev()},
				Cell{Mean: protN.Mean(), Std: protN.StdDev()})
		}
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// Figure5 regenerates the component breakdown on the TSO directory
// system: Base, SafetyNet only (SN), SN + coherence verification
// (SN+DVCC), SN + uniprocessor-ordering verification (SN+DVUO), and the
// full system (DVTSO), normalised per workload to Base.
func Figure5(opts ExperimentOpts) (Table, error) {
	t := Table{
		Title: "Figure 5: DVMC component breakdown, TSO directory system",
		Note:  "runtime normalised to the unprotected base",
		Cols:  []string{"Base", "SN", "SN+DVCC", "SN+DVUO", "DVTSO"},
	}
	variants := []func() Config{
		func() Config { return baseConfig(Directory, TSO) },
		func() Config {
			cfg := baseConfig(Directory, TSO)
			cfg.SafetyNet = true
			cfg.SNConfig = ScaledConfig().SNConfig
			return cfg
		},
		func() Config {
			cfg := baseConfig(Directory, TSO)
			cfg.SafetyNet = true
			cfg.SNConfig = ScaledConfig().SNConfig
			cfg.DVMC = DVMCConfig{CacheCoherence: true}
			return cfg
		},
		func() Config {
			cfg := baseConfig(Directory, TSO)
			cfg.SafetyNet = true
			cfg.SNConfig = ScaledConfig().SNConfig
			cfg.DVMC = DVMCConfig{UniprocessorOrdering: true, AllowableReordering: true}
			return cfg
		},
		func() Config { return protectConfig(Directory, TSO) },
	}
	ws := Workloads()
	jobs := make([]sampleJob, 0, len(ws)*len(variants))
	for _, w := range ws {
		for _, mk := range variants {
			jobs = append(jobs, sampleJob{mk(), w})
		}
	}
	res, err := runSampleJobs(jobs, opts)
	if err != nil {
		return t, err
	}
	for wi, w := range ws {
		t.Rows = append(t.Rows, w.Name)
		ref := res[wi*len(variants)].sample.Mean()
		var row []Cell
		for vi := range variants {
			n := stats.NormalizeBy(res[wi*len(variants)+vi].sample, ref)
			row = append(row, Cell{Mean: n.Mean(), Std: n.StdDev()})
		}
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// Figure6 regenerates the replay-miss figure: L1 misses during
// verification replay normalised to demand L1 misses (TSO directory,
// full DVMC).
func Figure6(opts ExperimentOpts) (Table, error) {
	t := Table{
		Title: "Figure 6: replay L1 misses normalised to demand L1 misses (TSO directory)",
		Cols:  []string{"replay/demand"},
	}
	ws := Workloads()
	jobs := make([]sampleJob, 0, len(ws))
	for _, w := range ws {
		jobs = append(jobs, sampleJob{protectConfig(Directory, TSO), w})
	}
	res, err := runSampleJobs(jobs, opts)
	if err != nil {
		return t, err
	}
	for wi, w := range ws {
		t.Rows = append(t.Rows, w.Name)
		sample := &stats.Sample{}
		for _, r := range res[wi].results {
			sample.Add(r.ReplayMissRatio())
		}
		t.Cells = append(t.Cells, []Cell{{Mean: sample.Mean(), Std: sample.StdDev()}})
	}
	return t, nil
}

// Figure7 regenerates the interconnect figure: mean bandwidth on the
// highest-loaded link (bytes/cycle) for the base system, base+SafetyNet,
// base+SafetyNet+coherence verification, and full DVTSO.
func Figure7(opts ExperimentOpts) (Table, error) {
	t := Table{
		Title: "Figure 7: mean bandwidth on the highest-loaded link (TSO directory), bytes/cycle",
		Cols:  []string{"Base", "SN", "SN+DVCC", "DVTSO"},
	}
	variants := []func() Config{
		func() Config { return baseConfig(Directory, TSO) },
		func() Config {
			cfg := baseConfig(Directory, TSO)
			cfg.SafetyNet = true
			cfg.SNConfig = ScaledConfig().SNConfig
			return cfg
		},
		func() Config {
			cfg := baseConfig(Directory, TSO)
			cfg.SafetyNet = true
			cfg.SNConfig = ScaledConfig().SNConfig
			cfg.DVMC = DVMCConfig{CacheCoherence: true}
			return cfg
		},
		func() Config { return protectConfig(Directory, TSO) },
	}
	ws := Workloads()
	jobs := make([]sampleJob, 0, len(ws)*len(variants))
	for _, w := range ws {
		for _, mk := range variants {
			jobs = append(jobs, sampleJob{mk(), w})
		}
	}
	res, err := runSampleJobs(jobs, opts)
	if err != nil {
		return t, err
	}
	for wi, w := range ws {
		t.Rows = append(t.Rows, w.Name)
		var row []Cell
		for vi := range variants {
			sample := &stats.Sample{}
			for _, r := range res[wi*len(variants)+vi].results {
				sample.Add(r.MaxLinkBandwidth)
			}
			row = append(row, Cell{Mean: sample.Mean(), Std: sample.StdDev()})
		}
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// Figure8 regenerates the link-bandwidth sensitivity sweep: DVTSO
// runtime normalised to the unprotected base, averaged over the
// workloads, at 1–3 GB/s links.
func Figure8(opts ExperimentOpts) (Table, error) {
	t := Table{
		Title: "Figure 8: DVTSO slowdown vs link bandwidth (directory, mean over workloads)",
		Cols:  []string{"normalised runtime"},
	}
	speeds := []float64{1.0, 1.5, 2.0, 2.5, 3.0}
	ws := Workloads()
	jobs := make([]sampleJob, 0, len(speeds)*len(ws)*2)
	for _, gbps := range speeds {
		for _, w := range ws {
			jobs = append(jobs,
				sampleJob{baseConfig(Directory, TSO).WithLinkGBps(gbps), w},
				sampleJob{protectConfig(Directory, TSO).WithLinkGBps(gbps), w})
		}
	}
	res, err := runSampleJobs(jobs, opts)
	if err != nil {
		return t, err
	}
	for si, gbps := range speeds {
		t.Rows = append(t.Rows, fmt.Sprintf("%.1f GB/s", gbps))
		agg := &stats.Sample{}
		for wi := range ws {
			base := res[(si*len(ws)+wi)*2].sample
			prot := res[(si*len(ws)+wi)*2+1].sample
			agg.Add(prot.Mean() / base.Mean())
		}
		t.Cells = append(t.Cells, []Cell{{Mean: agg.Mean(), Std: agg.StdDev()}})
	}
	return t, nil
}

// Figure9 regenerates the scaling sweep: DVTSO runtime normalised to the
// unprotected base for 1–8 processors at 2.5 GB/s.
func Figure9(opts ExperimentOpts) (Table, error) {
	t := Table{
		Title: "Figure 9: DVTSO slowdown vs processor count (directory, mean over workloads)",
		Cols:  []string{"normalised runtime"},
	}
	counts := []int{1, 2, 4, 8}
	ws := Workloads()
	jobs := make([]sampleJob, 0, len(counts)*len(ws)*2)
	for _, nodes := range counts {
		for _, w := range ws {
			jobs = append(jobs,
				sampleJob{baseConfig(Directory, TSO).WithNodes(nodes), w},
				sampleJob{protectConfig(Directory, TSO).WithNodes(nodes), w})
		}
	}
	res, err := runSampleJobs(jobs, opts)
	if err != nil {
		return t, err
	}
	for ni, nodes := range counts {
		t.Rows = append(t.Rows, fmt.Sprintf("%d", nodes))
		agg := &stats.Sample{}
		for wi := range ws {
			base := res[(ni*len(ws)+wi)*2].sample
			prot := res[(ni*len(ws)+wi)*2+1].sample
			agg.Add(prot.Mean() / base.Mean())
		}
		t.Cells = append(t.Cells, []Cell{{Mean: agg.Mean(), Std: agg.StdDev()}})
	}
	return t, nil
}

// ErrorDetectionRow is one row of the Section 6.1 table: a fault
// campaign against one protocol × consistency-model system.
type ErrorDetectionRow struct {
	Protocol Protocol
	Model    Model
}

// ErrorDetectionRows lists the Section 6.1 campaign rows in table
// order (directory first, models in Models order).
func ErrorDetectionRows() []ErrorDetectionRow {
	var rows []ErrorDetectionRow
	for _, protocol := range []Protocol{Directory, Snooping} {
		for _, m := range Models {
			rows = append(rows, ErrorDetectionRow{protocol, m})
		}
	}
	return rows
}

// ErrorDetectionConfig builds one row's fully-protected system
// configuration (ECC on, tight SafetyNet interval, periodic membar
// injection) — the exact knobs the Section 6.1 campaign has always
// used, exported so the distributed fabric reproduces the same rows.
func ErrorDetectionConfig(r ErrorDetectionRow, seed uint64) Config {
	cfg := protectConfig(r.Protocol, r.Model).WithSeed(seed)
	cfg.Memory.CacheECC = true
	cfg.SNConfig.Interval = 10000
	cfg.SNConfig.Keep = 10
	cfg.Proc.MembarInjectionInterval = 5000
	return cfg
}

// AssembleErrorDetectionTable renders per-row campaign results (in
// ErrorDetectionRows order; missing trailing rows are skipped) into the
// Section 6.1 table. Serial runs and the fabric's merged shards go
// through this same assembly, so their tables are byte-identical.
func AssembleErrorDetectionTable(campaigns []CampaignResult) Table {
	t := Table{
		Title: "Section 6.1: error-detection campaign (detected / applied; masked faults had no architectural effect)",
		Cols:  []string{"applied", "detected", "masked", "undetected"},
	}
	for i, r := range ErrorDetectionRows() {
		if i >= len(campaigns) {
			break
		}
		applied, detected, masked, undetected := campaigns[i].Counts()
		t.Rows = append(t.Rows, fmt.Sprintf("%v/%v", r.Protocol, r.Model))
		t.Cells = append(t.Cells, []Cell{
			{Mean: float64(applied)}, {Mean: float64(detected)},
			{Mean: float64(masked)}, {Mean: float64(undetected)},
		})
	}
	return t
}

// ErrorDetectionTable regenerates the Section 6.1 experiment: a fault
// campaign per consistency model and protocol, reporting detection
// coverage. workers bounds the row-level worker pool (1 serial, <=0
// min(GOMAXPROCS, rows)); the table is identical at any worker count.
func ErrorDetectionTable(faultsPerConfig int, budget uint64, seed uint64, workers int) (Table, error) {
	rows := ErrorDetectionRows()
	campaigns := make([]CampaignResult, len(rows))
	errs := make([]error, len(rows))
	parallelFor(len(rows), workers, func(i int) {
		campaigns[i], errs[i] = RunCampaign(ErrorDetectionConfig(rows[i], seed), OLTP(), faultsPerConfig, budget)
	})
	for i := range rows {
		if errs[i] != nil {
			return AssembleErrorDetectionTable(nil), errs[i]
		}
	}
	return AssembleErrorDetectionTable(campaigns), nil
}
