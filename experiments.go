package dvmc

import (
	"fmt"
	"strings"

	"dvmc/internal/stats"
)

// ExperimentOpts sizes an experiment run. The paper runs each simulation
// ten times with small pseudo-random perturbations; Repetitions controls
// that here.
type ExperimentOpts struct {
	Transactions uint64 // transactions per run (across all nodes)
	MaxCycles    uint64 // per-run cycle budget
	Repetitions  int    // perturbed repetitions per configuration
	SeedBase     uint64
}

// DefaultExperimentOpts returns a configuration sized for minutes-scale
// regeneration of every figure.
func DefaultExperimentOpts() ExperimentOpts {
	return ExperimentOpts{Transactions: 150, MaxCycles: 40_000_000, Repetitions: 3, SeedBase: 100}
}

// QuickExperimentOpts returns a configuration for smoke tests.
func QuickExperimentOpts() ExperimentOpts {
	return ExperimentOpts{Transactions: 40, MaxCycles: 20_000_000, Repetitions: 1, SeedBase: 100}
}

// Cell is one mean ± stddev table entry.
type Cell struct {
	Mean float64
	Std  float64
}

// Table is a printable experiment result (one per paper figure).
type Table struct {
	Title string
	Note  string
	Rows  []string
	Cols  []string
	Cells [][]Cell
}

// String renders the table.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "  (%s)\n", t.Note)
	}
	w := 12
	fmt.Fprintf(&b, "%-10s", "")
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "%*s", w+8, c)
	}
	b.WriteString("\n")
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-10s", r)
		for j := range t.Cols {
			c := t.Cells[i][j]
			fmt.Fprintf(&b, "%*s", w+8, fmt.Sprintf("%.3f ±%.3f", c.Mean, c.Std))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// runtimeSample measures the runtime (cycles to complete the transaction
// quota) over perturbed repetitions.
func runtimeSample(cfg Config, w Workload, opts ExperimentOpts) (*stats.Sample, []Results, error) {
	sample := &stats.Sample{}
	var all []Results
	for rep := 0; rep < opts.Repetitions; rep++ {
		s, err := NewSystem(cfg.WithSeed(opts.SeedBase+uint64(rep)), w)
		if err != nil {
			return nil, nil, err
		}
		res, err := s.Run(opts.Transactions, opts.MaxCycles)
		if err != nil {
			return nil, nil, fmt.Errorf("%s/%v/%v rep %d: %w", w.Name, cfg.Protocol, cfg.Model, rep, err)
		}
		s.DrainCheckers()
		if v := s.Violations(); len(v) != 0 {
			return nil, nil, fmt.Errorf("%s/%v/%v rep %d: unexpected violation %v", w.Name, cfg.Protocol, cfg.Model, rep, v[0])
		}
		sample.Add(float64(res.Cycles))
		all = append(all, res)
	}
	return sample, all, nil
}

// baseConfig returns the experiment baseline (unprotected: no DVMC, no
// SafetyNet) on the scaled geometry.
func baseConfig(protocol Protocol, model Model) Config {
	cfg := ScaledConfig().WithProtocol(protocol).WithModel(model)
	cfg.DVMC = Off()
	cfg.SafetyNet = false
	return cfg
}

// protectConfig returns the fully protected system (DVMC + SafetyNet).
func protectConfig(protocol Protocol, model Model) Config {
	cfg := ScaledConfig().WithProtocol(protocol).WithModel(model)
	cfg.DVMC = Full()
	cfg.SafetyNet = true
	return cfg
}

// FigureRuntimes regenerates Figure 3 (directory) or Figure 4 (snooping):
// runtimes of the unprotected base and the full DVMC system under each
// consistency model, normalised per workload to the unprotected SC run.
func FigureRuntimes(protocol Protocol, opts ExperimentOpts) (Table, error) {
	t := Table{
		Title: fmt.Sprintf("Figure %d: runtime normalised to SC-base (%v system)", map[Protocol]int{Directory: 3, Snooping: 4}[protocol], protocol),
		Note:  "lower is faster; Base = unprotected, DVMC = full verification + SafetyNet",
	}
	for _, m := range Models {
		t.Cols = append(t.Cols, m.String()+"-base", m.String()+"-dvmc")
	}
	for _, w := range Workloads() {
		t.Rows = append(t.Rows, w.Name)
		scBase, _, err := runtimeSample(baseConfig(protocol, SC), w, opts)
		if err != nil {
			return t, err
		}
		ref := scBase.Mean()
		var row []Cell
		for _, m := range Models {
			var base *stats.Sample
			if m == SC {
				base = scBase
			} else {
				base, _, err = runtimeSample(baseConfig(protocol, m), w, opts)
				if err != nil {
					return t, err
				}
			}
			prot, _, err := runtimeSample(protectConfig(protocol, m), w, opts)
			if err != nil {
				return t, err
			}
			baseN := stats.NormalizeBy(base, ref)
			protN := stats.NormalizeBy(prot, ref)
			row = append(row,
				Cell{Mean: baseN.Mean(), Std: baseN.StdDev()},
				Cell{Mean: protN.Mean(), Std: protN.StdDev()})
		}
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// Figure5 regenerates the component breakdown on the TSO directory
// system: Base, SafetyNet only (SN), SN + coherence verification
// (SN+DVCC), SN + uniprocessor-ordering verification (SN+DVUO), and the
// full system (DVTSO), normalised per workload to Base.
func Figure5(opts ExperimentOpts) (Table, error) {
	t := Table{
		Title: "Figure 5: DVMC component breakdown, TSO directory system",
		Note:  "runtime normalised to the unprotected base",
		Cols:  []string{"Base", "SN", "SN+DVCC", "SN+DVUO", "DVTSO"},
	}
	variants := []func() Config{
		func() Config { return baseConfig(Directory, TSO) },
		func() Config {
			cfg := baseConfig(Directory, TSO)
			cfg.SafetyNet = true
			cfg.SNConfig = ScaledConfig().SNConfig
			return cfg
		},
		func() Config {
			cfg := baseConfig(Directory, TSO)
			cfg.SafetyNet = true
			cfg.SNConfig = ScaledConfig().SNConfig
			cfg.DVMC = DVMCConfig{CacheCoherence: true}
			return cfg
		},
		func() Config {
			cfg := baseConfig(Directory, TSO)
			cfg.SafetyNet = true
			cfg.SNConfig = ScaledConfig().SNConfig
			cfg.DVMC = DVMCConfig{UniprocessorOrdering: true, AllowableReordering: true}
			return cfg
		},
		func() Config { return protectConfig(Directory, TSO) },
	}
	for _, w := range Workloads() {
		t.Rows = append(t.Rows, w.Name)
		var row []Cell
		var ref float64
		for i, mk := range variants {
			s, _, err := runtimeSample(mk(), w, opts)
			if err != nil {
				return t, err
			}
			if i == 0 {
				ref = s.Mean()
			}
			n := stats.NormalizeBy(s, ref)
			row = append(row, Cell{Mean: n.Mean(), Std: n.StdDev()})
		}
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// Figure6 regenerates the replay-miss figure: L1 misses during
// verification replay normalised to demand L1 misses (TSO directory,
// full DVMC).
func Figure6(opts ExperimentOpts) (Table, error) {
	t := Table{
		Title: "Figure 6: replay L1 misses normalised to demand L1 misses (TSO directory)",
		Cols:  []string{"replay/demand"},
	}
	for _, w := range Workloads() {
		t.Rows = append(t.Rows, w.Name)
		sample := &stats.Sample{}
		_, results, err := runtimeSample(protectConfig(Directory, TSO), w, opts)
		if err != nil {
			return t, err
		}
		for _, r := range results {
			sample.Add(r.ReplayMissRatio())
		}
		t.Cells = append(t.Cells, []Cell{{Mean: sample.Mean(), Std: sample.StdDev()}})
	}
	return t, nil
}

// Figure7 regenerates the interconnect figure: mean bandwidth on the
// highest-loaded link (bytes/cycle) for the base system, base+SafetyNet,
// base+SafetyNet+coherence verification, and full DVTSO.
func Figure7(opts ExperimentOpts) (Table, error) {
	t := Table{
		Title: "Figure 7: mean bandwidth on the highest-loaded link (TSO directory), bytes/cycle",
		Cols:  []string{"Base", "SN", "SN+DVCC", "DVTSO"},
	}
	variants := []func() Config{
		func() Config { return baseConfig(Directory, TSO) },
		func() Config {
			cfg := baseConfig(Directory, TSO)
			cfg.SafetyNet = true
			cfg.SNConfig = ScaledConfig().SNConfig
			return cfg
		},
		func() Config {
			cfg := baseConfig(Directory, TSO)
			cfg.SafetyNet = true
			cfg.SNConfig = ScaledConfig().SNConfig
			cfg.DVMC = DVMCConfig{CacheCoherence: true}
			return cfg
		},
		func() Config { return protectConfig(Directory, TSO) },
	}
	for _, w := range Workloads() {
		t.Rows = append(t.Rows, w.Name)
		var row []Cell
		for _, mk := range variants {
			_, results, err := runtimeSample(mk(), w, opts)
			if err != nil {
				return t, err
			}
			sample := &stats.Sample{}
			for _, r := range results {
				sample.Add(r.MaxLinkBandwidth)
			}
			row = append(row, Cell{Mean: sample.Mean(), Std: sample.StdDev()})
		}
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// Figure8 regenerates the link-bandwidth sensitivity sweep: DVTSO
// runtime normalised to the unprotected base, averaged over the
// workloads, at 1–3 GB/s links.
func Figure8(opts ExperimentOpts) (Table, error) {
	t := Table{
		Title: "Figure 8: DVTSO slowdown vs link bandwidth (directory, mean over workloads)",
		Cols:  []string{"normalised runtime"},
	}
	for _, gbps := range []float64{1.0, 1.5, 2.0, 2.5, 3.0} {
		t.Rows = append(t.Rows, fmt.Sprintf("%.1f GB/s", gbps))
		agg := &stats.Sample{}
		for _, w := range Workloads() {
			base, _, err := runtimeSample(baseConfig(Directory, TSO).WithLinkGBps(gbps), w, opts)
			if err != nil {
				return t, err
			}
			prot, _, err := runtimeSample(protectConfig(Directory, TSO).WithLinkGBps(gbps), w, opts)
			if err != nil {
				return t, err
			}
			agg.Add(prot.Mean() / base.Mean())
		}
		t.Cells = append(t.Cells, []Cell{{Mean: agg.Mean(), Std: agg.StdDev()}})
	}
	return t, nil
}

// Figure9 regenerates the scaling sweep: DVTSO runtime normalised to the
// unprotected base for 1–8 processors at 2.5 GB/s.
func Figure9(opts ExperimentOpts) (Table, error) {
	t := Table{
		Title: "Figure 9: DVTSO slowdown vs processor count (directory, mean over workloads)",
		Cols:  []string{"normalised runtime"},
	}
	for _, nodes := range []int{1, 2, 4, 8} {
		t.Rows = append(t.Rows, fmt.Sprintf("%d", nodes))
		agg := &stats.Sample{}
		for _, w := range Workloads() {
			base, _, err := runtimeSample(baseConfig(Directory, TSO).WithNodes(nodes), w, opts)
			if err != nil {
				return t, err
			}
			prot, _, err := runtimeSample(protectConfig(Directory, TSO).WithNodes(nodes), w, opts)
			if err != nil {
				return t, err
			}
			agg.Add(prot.Mean() / base.Mean())
		}
		t.Cells = append(t.Cells, []Cell{{Mean: agg.Mean(), Std: agg.StdDev()}})
	}
	return t, nil
}

// ErrorDetectionTable regenerates the Section 6.1 experiment: a fault
// campaign per consistency model and protocol, reporting detection
// coverage.
func ErrorDetectionTable(faultsPerConfig int, budget uint64, seed uint64) (Table, error) {
	t := Table{
		Title: "Section 6.1: error-detection campaign (detected / applied; masked faults had no architectural effect)",
		Cols:  []string{"applied", "detected", "masked", "undetected"},
	}
	for _, protocol := range []Protocol{Directory, Snooping} {
		for _, m := range Models {
			t.Rows = append(t.Rows, fmt.Sprintf("%v/%v", protocol, m))
			cfg := protectConfig(protocol, m).WithSeed(seed)
			cfg.Memory.CacheECC = true
			cfg.SNConfig.Interval = 10000
			cfg.SNConfig.Keep = 10
			cfg.Proc.MembarInjectionInterval = 5000
			camp, err := RunCampaign(cfg, OLTP(), faultsPerConfig, budget)
			if err != nil {
				return t, err
			}
			applied, detected, masked, undetected := camp.Counts()
			t.Cells = append(t.Cells, []Cell{
				{Mean: float64(applied)}, {Mean: float64(detected)},
				{Mean: float64(masked)}, {Mean: float64(undetected)},
			})
		}
	}
	return t, nil
}
