package dvmc

import (
	"dvmc/internal/network"
	"dvmc/internal/telemetry"
)

// TelemetryConfig re-exports the telemetry configuration.
type TelemetryConfig = telemetry.Config

// TelemetryOn returns an enabled telemetry configuration with defaults
// (cycle sampling every telemetry.DefaultEvery cycles).
func TelemetryOn() TelemetryConfig { return telemetry.On() }

// Telemetry returns the system's metric registry. It always exists —
// end-of-run counters and gauges cost nothing while the system runs —
// but time series are only captured when Config.Telemetry.Enabled
// scheduled the cycle sampler.
func (s *System) Telemetry() *telemetry.Registry { return s.reg }

// TelemetrySnapshot refreshes all probes and captures the registry as
// of the current cycle (the -metrics-out flags and the live /metrics
// endpoint serialise this).
func (s *System) TelemetrySnapshot() *telemetry.Snapshot {
	return s.reg.Snapshot(uint64(s.Now()))
}

// classLabels are the label values for per-traffic-class vectors, in
// network.Class order.
var classLabels = []string{"coherence", "inform", "safetynet", "replay"}

// classOf maps label slots back to network classes.
var classOf = []network.Class{network.ClassCoherence, network.ClassInform,
	network.ClassSafetyNet, network.ClassReplay}

// buildTelemetry registers the system's metrics, the probes that
// refresh them from the live structures, and the tracked time series.
// Called at the end of NewSystem, after every component exists; the
// sampler itself is registered on the kernel last, so each sampling
// tick observes the state after all components ticked that cycle.
//
// Probe discipline: probes run on every sampling tick and must not
// allocate — they read existing counters/depth accessors and perform
// plain slice writes into the registry (enforced by the
// SteadyStateAllocFree assertions in telemetry_test.go).
func (s *System) buildTelemetry(cfg Config) {
	s.reg = telemetry.NewRegistry(cfg.Telemetry)
	reg := s.reg
	nodes := telemetry.NodeLabels(cfg.Nodes)

	// Core pipeline counters and occupancy gauges.
	ops := reg.CounterVec("proc.ops_retired", "operations retired", "node", nodes)
	txns := reg.CounterVec("proc.transactions", "workload transactions committed", "node", nodes)
	spec := reg.CounterVec("proc.spec_squashes", "load-order mis-speculation flushes", "node", nodes)
	verify := reg.CounterVec("proc.verify_squashes", "UO replay mismatch flushes", "node", nodes)
	membar := reg.CounterVec("proc.membar_stalls", "cycles stalled at membars", "node", nodes)
	vcFull := reg.CounterVec("proc.vc_full_stalls", "stalls on a full verification cache", "node", nodes)
	wbFull := reg.CounterVec("proc.wb_full_stalls", "stalls on a full write buffer", "node", nodes)
	rob := reg.Track(reg.GaugeVec("proc.rob_occupancy", "reorder-buffer entries in flight", "node", nodes))
	wb := reg.Track(reg.GaugeVec("proc.wb_occupancy", "write-buffer stores pending", "node", nodes))
	reg.AddProbe(func() {
		for i, c := range s.cpus {
			st := c.Stats()
			ops.Set(i, int64(st.OpsRetired))
			txns.Set(i, int64(st.Transactions))
			spec.Set(i, int64(st.SpecSquashes))
			verify.Set(i, int64(st.VerifySquashes))
			membar.Set(i, int64(st.MembarStalls))
			vcFull.Set(i, int64(st.VCFullStalls))
			wbFull.Set(i, int64(st.WBFullStalls))
			rob.Set(i, int64(c.ROBLen()))
			wb.Set(i, int64(c.WBLen()))
		}
	})

	// Memory-system counters.
	l1h := reg.CounterVec("cache.l1_hits", "L1 hits", "node", nodes)
	l1m := reg.CounterVec("cache.l1_misses", "L1 misses", "node", nodes)
	l2h := reg.CounterVec("cache.l2_hits", "L2 hits", "node", nodes)
	l2m := reg.CounterVec("cache.l2_misses", "L2 misses", "node", nodes)
	rply := reg.CounterVec("cache.replay_loads", "loads issued by VC replay", "node", nodes)
	rplyMiss := reg.CounterVec("cache.replay_l1_misses", "L1 misses on replay loads", "node", nodes)
	wbacks := reg.CounterVec("cache.writebacks", "dirty writebacks", "node", nodes)
	reg.AddProbe(func() {
		for i, c := range s.ctrls {
			st := c.Stats()
			l1h.Set(i, int64(st.L1Hits))
			l1m.Set(i, int64(st.L1Misses))
			l2h.Set(i, int64(st.L2Hits))
			l2m.Set(i, int64(st.L2Misses))
			rply.Set(i, int64(st.ReplayLoads))
			rplyMiss.Set(i, int64(st.ReplayL1Misses))
			wbacks.Set(i, int64(st.WritebacksDirty))
		}
	})

	// DVMC checker counters and table/queue occupancy.
	viol := reg.Counter("checker.violations", "detected consistency violations")
	reg.AddProbe(func() { viol.Set(0, int64(s.violations.Count())) })
	if cfg.DVMC.UniprocessorOrdering {
		vcEntries := reg.Track(reg.GaugeVec("checker.vc_entries", "verification-cache words allocated", "node", nodes))
		vcStores := reg.GaugeVec("checker.vc_store_entries", "VC words tracking unperformed stores", "node", nodes)
		reg.AddProbe(func() {
			for i, u := range s.uo {
				if u == nil {
					continue
				}
				vcEntries.Set(i, int64(u.Entries()))
				vcStores.Set(i, int64(u.StoreEntries()))
			}
		})
	}
	if cfg.DVMC.CacheCoherence {
		informs := reg.Track(reg.CounterVec("checker.informs", "Inform-Epochs sent to the MET", "node", nodes))
		openInf := reg.CounterVec("checker.open_informs", "Inform-Open-Epochs sent", "node", nodes)
		cetOpen := reg.Track(reg.GaugeVec("checker.cet_open_epochs", "open epochs in the cache epoch table", "node", nodes))
		cetSlab := reg.GaugeVec("checker.cet_slab_in_use", "occupied CET slab slots", "node", nodes)
		cetScrub := reg.Track(reg.GaugeVec("checker.cet_scrub_queue", "delayed informs queued for scrub", "node", nodes))
		metQ := reg.Track(reg.GaugeVec("checker.met_queue_depth", "informs waiting in the MET priority queue", "node", nodes))
		metEnt := reg.GaugeVec("checker.met_entries", "memory epoch table entries", "node", nodes)
		metProc := reg.CounterVec("checker.informs_processed", "informs folded into the MET", "node", nodes)
		metOver := reg.CounterVec("checker.met_queue_overflows", "MET queue overflows forcing early processing", "node", nodes)
		reg.AddProbe(func() {
			for i, c := range s.cet {
				st := c.Stats()
				informs.Set(i, int64(st.Informs))
				openInf.Set(i, int64(st.OpenInforms))
				cetOpen.Set(i, int64(c.OpenEpochs()))
				cetSlab.Set(i, int64(c.SlabInUse()))
				cetScrub.Set(i, int64(c.ScrubQueueLen()))
			}
			for i, m := range s.met {
				metQ.Set(i, int64(m.QueueDepth()))
				metEnt.Set(i, int64(m.Entries()))
				st := m.Stats()
				metProc.Set(i, int64(st.InformsProcessed))
				metOver.Set(i, int64(st.QueueOverflows))
			}
		})
	}

	// Interconnect byte counters, per traffic class (Figure 7's
	// breakdown, as a time series).
	netBytes := reg.Track(reg.CounterVec("net.bytes", "bytes carried, by traffic class", "class", classLabels))
	netTotal := reg.Counter("net.bytes_total", "total bytes carried on all links")
	reg.AddProbe(func() {
		for i, cl := range classOf {
			b := s.torus.ClassBytes(cl)
			if s.bcast != nil {
				b += s.bcast.ClassBytes(cl)
			}
			netBytes.Set(i, int64(b))
		}
		total := s.torus.TotalBytes()
		if s.bcast != nil {
			total += s.bcast.TotalBytes()
		}
		netTotal.Set(0, int64(total))
	})

	// SafetyNet checkpoint/log pressure.
	if cfg.SafetyNet {
		cps := reg.Counter("sn.checkpoints", "coordinated checkpoints taken")
		recov := reg.Counter("sn.recoveries", "rollback recoveries performed")
		logMsgs := reg.Counter("sn.log_messages", "write-log ownership messages sent")
		logBytes := reg.Track(reg.Counter("sn.log_bytes", "write-log bytes on the wire"))
		live := reg.Track(reg.Gauge("sn.live_checkpoints", "retained (unexpired) checkpoints"))
		reg.AddProbe(func() {
			st := s.snMgr.Stats()
			cps.Set(0, int64(st.CheckpointsTaken))
			recov.Set(0, int64(st.Recoveries))
			logMsgs.Set(0, int64(st.LogMessages))
			logBytes.Set(0, int64(st.LogBytes))
			live.Set(0, int64(s.snMgr.LiveCount()))
		})
	}

	// Execution-trace recorder accounting.
	if s.rec != nil {
		trEvents := reg.Counter("trace.events", "execution-trace events recorded")
		trDropped := reg.Counter("trace.dropped", "trace events evicted in flight-recorder mode")
		trSpills := reg.Counter("trace.spills", "trace ring drains into the encoder")
		reg.AddProbe(func() {
			st := s.rec.Stats()
			trEvents.Set(0, int64(st.Events))
			trDropped.Set(0, int64(st.Dropped))
			trSpills.Set(0, int64(st.Spills))
		})
	}

	if cfg.Telemetry.Enabled {
		s.sampler = telemetry.NewSampler(reg, cfg.Telemetry.Every)
		s.kernel.Register(s.sampler)
	}
}

// recordViolation feeds the violation sink's structured event into the
// telemetry registry. Injection harnesses later back-fill activation
// times via Registry.AttributeInjection, which populates the
// per-invariant detection-latency distributions.
func (s *System) recordViolation(v Violation) {
	s.reg.RecordViolation(telemetry.ViolationEvent{
		Invariant:   v.Kind.String(),
		Node:        int(v.Node),
		Addr:        uint64(v.Block),
		DetectCycle: uint64(v.Cycle),
		Detail:      v.Detail,
	})
}
