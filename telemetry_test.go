package dvmc

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"dvmc/internal/core"
)

// telemetryDump runs one instrumented simulation and returns every
// rendered view (Prometheus, CSV, series CSV, JSON) concatenated — the
// strongest byte-level fingerprint of the telemetry subsystem.
func telemetryDump(t *testing.T, seed uint64, proto Protocol) []byte {
	t.Helper()
	tc := TelemetryOn()
	tc.Every = 256
	cfg := smallConfig().WithSeed(seed).WithProtocol(proto).WithTelemetry(tc)
	sys, err := NewSystem(cfg, smallWorkload())
	if err != nil {
		t.Fatalf("seed %d %v: %v", seed, proto, err)
	}
	if _, err := sys.Run(50, 2_000_000); err != nil {
		t.Fatalf("seed %d %v: %v", seed, proto, err)
	}
	sys.DrainCheckers()
	snap := sys.TelemetrySnapshot()
	var buf bytes.Buffer
	for _, enc := range []func() error{
		func() error { return snap.Prometheus(&buf) },
		func() error { return snap.CSV(&buf) },
		func() error { return snap.SeriesCSV(&buf) },
		func() error { return snap.EncodeJSON(&buf) },
	} {
		if err := enc(); err != nil {
			t.Fatalf("seed %d %v: encode: %v", seed, proto, err)
		}
	}
	return buf.Bytes()
}

type telemetryCombo struct {
	seed  uint64
	proto Protocol
}

func telemetryCombos() []telemetryCombo {
	var combos []telemetryCombo
	for _, seed := range []uint64{1, 2, 3} {
		for _, proto := range []Protocol{Directory, Snooping} {
			combos = append(combos, telemetryCombo{seed, proto})
		}
	}
	return combos
}

// TestTelemetryDumpsDeterministic is the telemetry determinism
// regression: for three seeds and both protocols, re-running the
// identical simulation must reproduce byte-identical Prometheus, CSV,
// series-CSV, and JSON dumps. A sampler that read anything but
// simulated state — the wall clock, map iteration order, scheduler
// timing — fails here.
func TestTelemetryDumpsDeterministic(t *testing.T) {
	for _, c := range telemetryCombos() {
		a := telemetryDump(t, c.seed, c.proto)
		b := telemetryDump(t, c.seed, c.proto)
		if !bytes.Equal(a, b) {
			t.Errorf("seed %d %v: telemetry dumps differ between identical runs", c.seed, c.proto)
		}
		if len(a) == 0 {
			t.Errorf("seed %d %v: empty telemetry dump", c.seed, c.proto)
		}
	}
}

// TestTelemetryDumpsIdenticalAcrossWorkerCounts runs the seed×protocol
// matrix through worker pools of several sizes (the dvmc-bench harness
// shape) and requires every combination's dump to match its serial
// reference. Each simulation is a sealed single-threaded machine, so
// host scheduling across pool workers must be invisible in the bytes.
func TestTelemetryDumpsIdenticalAcrossWorkerCounts(t *testing.T) {
	combos := telemetryCombos()
	serial := make([][]byte, len(combos))
	for i, c := range combos {
		serial[i] = telemetryDump(t, c.seed, c.proto)
	}
	for _, workers := range []int{2, 4} {
		got := make([][]byte, len(combos))
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					got[i] = telemetryDump(t, combos[i].seed, combos[i].proto)
				}
			}()
		}
		for i := range combos {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		for i, c := range combos {
			if !bytes.Equal(got[i], serial[i]) {
				t.Errorf("workers=%d seed %d %v: dump differs from serial reference",
					workers, c.seed, c.proto)
			}
		}
	}
}

// TestTelemetrySnapshotShape sanity-checks the wired instrumentation:
// core metric families exist, per-node vectors have one slot per node,
// and tracked series carry samples at the configured period.
func TestTelemetrySnapshotShape(t *testing.T) {
	tc := TelemetryOn()
	tc.Every = 128
	cfg := smallConfig().WithTelemetry(tc)
	sys, err := NewSystem(cfg, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(50, 2_000_000); err != nil {
		t.Fatal(err)
	}
	sys.DrainCheckers()
	reg := sys.Telemetry()
	for _, name := range []string{
		"proc.ops_retired", "cache.l1_misses", "checker.informs",
		"checker.met_queue_depth", "net.bytes", "sn.checkpoints",
	} {
		m := reg.Lookup(name)
		if m == nil {
			t.Errorf("metric %q not registered", name)
			continue
		}
		if m.Label() == "node" && m.Len() != cfg.Nodes {
			t.Errorf("%s has %d slots, want %d", name, m.Len(), cfg.Nodes)
		}
	}
	if reg.Lookup("proc.ops_retired").Total() == 0 {
		t.Errorf("proc.ops_retired stayed zero over a 50-txn run")
	}
	series := reg.Series()
	if len(series) == 0 {
		t.Fatal("no tracked series")
	}
	for _, s := range series[:1] {
		if s.Len() < 2 {
			t.Errorf("series %s has %d samples, want several", s.Metric().Name(), s.Len())
		}
		c0, _ := s.At(0)
		c1, _ := s.At(1)
		if c1-c0 != 128 {
			t.Errorf("sampling stride = %d cycles, want 128", c1-c0)
		}
	}
}

// benchmarkSystemRun measures whole-simulation throughput with the
// given telemetry config; the Off/On pair quantifies sampling overhead
// (EXPERIMENTS.md documents the measured delta; target < 2%).
func benchmarkSystemRun(b *testing.B, tc TelemetryConfig) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := smallConfig().WithTelemetry(tc)
		sys, err := NewSystem(cfg, smallWorkload())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Run(200, 5_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSystemTelemetryOff(b *testing.B) { benchmarkSystemRun(b, TelemetryConfig{}) }

func BenchmarkSystemTelemetryOn(b *testing.B) { benchmarkSystemRun(b, TelemetryOn()) }

// TestCampaignLatencyByKind runs a small injection campaign and checks
// the per-invariant detection-latency aggregation: every detected fault
// lands in exactly one invariant's sample, and the samples render as
// histograms.
func TestCampaignLatencyByKind(t *testing.T) {
	cfg := smallConfig()
	camp, err := RunCampaign(cfg, Slashcode(), 30, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	_, detected, _, _ := camp.Counts()
	if detected == 0 {
		t.Skip("campaign detected nothing at this geometry")
	}
	lat := camp.LatencyByKind()
	if len(lat) == 0 {
		t.Fatalf("%d detections but no per-invariant latency samples", detected)
	}
	total := 0
	for _, l := range lat {
		if l.Sample.N() == 0 {
			t.Errorf("%v: empty sample", l.Kind)
		}
		total += l.Sample.N()
		if h := l.Sample.Histogram(8); len(h) == 0 {
			t.Errorf("%v: no histogram bins", l.Kind)
		}
		t.Logf("%-40v n=%d p50=%.0f p99=%.0f max=%.0f cycles",
			l.Kind, l.Sample.N(), l.Sample.Quantile(0.5), l.Sample.Quantile(0.99), l.Sample.Max())
	}
	if total != detected {
		t.Errorf("latency samples cover %d detections, campaign counted %d", total, detected)
	}
	for i := 1; i < len(lat); i++ {
		if lat[i-1].Kind.String() >= lat[i].Kind.String() {
			t.Errorf("LatencyByKind not sorted: %v before %v", lat[i-1].Kind, lat[i].Kind)
		}
	}
}

// TestInjectionPopulatesLatencyHistogram drives one detectable fault
// through the injection harness and requires the per-invariant
// detection-latency distribution to be populated and consistent with
// the harness's own latency measurement.
func TestInjectionPopulatesLatencyHistogram(t *testing.T) {
	cfg := smallConfig().WithTelemetry(TelemetryOn())
	inj := Injection{Kind: FaultMsgDrop, Node: 1, Cycle: 4000}
	res, sys, err := RunInjectionSystem(cfg, smallWorkload(), inj, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Skipf("fault not detected in this configuration (masked=%v)", res.Masked)
	}
	lat := sys.Telemetry().LatencyByInvariant()
	if len(lat) == 0 {
		t.Fatal("detected injection left no per-invariant latency samples")
	}
	name := res.DetectionKind.String()
	found := false
	for _, l := range lat {
		if l.Invariant == name {
			found = true
			if l.Sample.N() == 0 {
				t.Errorf("%s: empty latency sample", name)
			}
		}
	}
	// Inline LSQ-replay detections are recorded under UOMismatch even
	// though they never reach the violation sink.
	if !found && res.DetectionKind != core.UOMismatch {
		names := make([]string, len(lat))
		for i, l := range lat {
			names[i] = fmt.Sprintf("%s(n=%d)", l.Invariant, l.Sample.N())
		}
		t.Errorf("no latency sample for detection kind %q; have %v", name, names)
	}
}
