package dvmc

import (
	"fmt"
	"sort"

	"dvmc/internal/coherence"
	"dvmc/internal/core"
	"dvmc/internal/mem"
	"dvmc/internal/network"
	"dvmc/internal/proc"
	"dvmc/internal/sim"
	"dvmc/internal/span"
	"dvmc/internal/stats"
)

// FaultKind enumerates the error classes of the paper's Section 6.1
// campaign: "data and address bit flips; dropped, reordered, mis-routed,
// and duplicated messages; and reorderings and incorrect forwarding in
// the LSQ and write buffer", injected into the LSQ, write buffer,
// caches, interconnect, and memory/cache controllers.
type FaultKind uint8

// Fault kinds.
const (
	// Interconnect faults.
	FaultMsgDrop FaultKind = iota + 1
	FaultMsgDuplicate
	FaultMsgMisroute
	FaultMsgReorder
	FaultMsgDataFlip     // data bit flip in a block-bearing message
	FaultMsgStaleDup     // duplicate replayed a full fault window late
	FaultMsgReorderBurst // burst of messages captured and released in reverse order
	// Storage faults.
	FaultCacheDataFlip
	FaultMemoryDataFlip
	// Write-buffer faults.
	FaultWBReorder
	FaultWBDrop
	FaultWBCorrupt
	// LSQ faults.
	FaultLSQValue
	FaultLSQForward
	// Controller-logic faults.
	FaultPermissionDrop
	FaultSilentWrite
	FaultCtrlStateCorrupt // MOSI state bits of a resident line flipped
	// Logical-time fault.
	FaultTimeSkew // per-node clock skew attacking the Time16 wraparound scrubber
	// BER fault.
	FaultNestedRecovery // a second rollback before any post-recovery checkpoint

	numFaultKinds
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultMsgDrop:
		return "msg-drop"
	case FaultMsgDuplicate:
		return "msg-duplicate"
	case FaultMsgMisroute:
		return "msg-misroute"
	case FaultMsgReorder:
		return "msg-reorder"
	case FaultMsgDataFlip:
		return "msg-data-flip"
	case FaultMsgStaleDup:
		return "msg-stale-dup"
	case FaultMsgReorderBurst:
		return "msg-reorder-burst"
	case FaultCacheDataFlip:
		return "cache-data-flip"
	case FaultMemoryDataFlip:
		return "memory-data-flip"
	case FaultWBReorder:
		return "wb-reorder"
	case FaultWBDrop:
		return "wb-drop"
	case FaultWBCorrupt:
		return "wb-corrupt"
	case FaultLSQValue:
		return "lsq-value-flip"
	case FaultLSQForward:
		return "lsq-bad-forward"
	case FaultPermissionDrop:
		return "ctrl-permission-drop"
	case FaultSilentWrite:
		return "ctrl-silent-write"
	case FaultCtrlStateCorrupt:
		return "ctrl-state-corrupt"
	case FaultTimeSkew:
		return "lt-skew"
	case FaultNestedRecovery:
		return "nested-recovery"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// AllFaultKinds lists every injectable fault class.
func AllFaultKinds() []FaultKind {
	out := make([]FaultKind, 0, int(numFaultKinds)-1)
	for k := FaultKind(1); k < numFaultKinds; k++ {
		out = append(out, k)
	}
	return out
}

// finishGraceCycles is how long an injection run keeps observing after
// every finite program has finished and drained: long enough for
// in-flight coherence messages and queued checker informs to settle so a
// late violation still lands inside the observation window, short enough
// that fuzz campaigns do not burn the whole budget on finished systems.
const finishGraceCycles = 2000

// Injection describes one fault to inject.
type Injection struct {
	Kind  FaultKind
	Node  int       // target node (cache/WB/LSQ faults)
	Cycle sim.Cycle // injection time
	// Window parameterises time-windowed faults (0 = kind default): the
	// stale-dup replay delay, the reorder-burst release deadline, and the
	// nested-recovery re-trigger delay.
	Window sim.Cycle
	// Magnitude parameterises sized faults (0 = kind default): the
	// reorder-burst length, and the injected skew in logical-time ticks.
	Magnitude uint64
}

// window returns the effective fault window for time-windowed kinds.
func (inj Injection) window() sim.Cycle {
	if inj.Window > 0 {
		return inj.Window
	}
	switch inj.Kind {
	case FaultMsgStaleDup:
		return 1500 // long enough for the original transaction to retire
	case FaultMsgReorderBurst:
		return 400 // release deadline if the burst never fills
	case FaultNestedRecovery:
		return 2500 // well inside one checkpoint interval
	default:
		return 64
	}
}

// magnitude returns the effective fault magnitude for sized kinds.
func (inj Injection) magnitude() uint64 {
	if inj.Magnitude > 0 {
		return inj.Magnitude
	}
	switch inj.Kind {
	case FaultMsgReorderBurst:
		return 4
	case FaultTimeSkew:
		// Half the Time16 range: the compressed-timestamp scrubber's
		// wraparound worst case.
		return 1 << 15
	default:
		return 1
	}
}

// InjectionResult records what happened.
type InjectionResult struct {
	Injection Injection
	// Applied reports whether the fault could be placed (a cache flip
	// needs a resident block, a WB fault a buffered store, ...).
	Applied bool
	// ActivatedAt is when the fault took architectural effect (armed
	// faults can lie dormant until a matching event occurs).
	ActivatedAt sim.Cycle
	// Detected reports a checker violation, a UO-replay mismatch (which
	// corrects LSQ faults inline), or an ECC correction (cache bit
	// flips) after the injection.
	Detected bool
	// DetectionKind is the first violation's kind.
	DetectionKind core.ViolationKind
	// Latency is detection cycle minus injection cycle.
	Latency sim.Cycle
	// Recoverable reports that a SafetyNet checkpoint older than the
	// injection was still live at detection (the paper's criterion:
	// detection within the ~100k-cycle recovery window).
	Recoverable bool
	// Masked reports an undetected fault whose class can be consumed
	// without architectural effect (a duplicate message absorbed
	// idempotently, a dormant LSQ fault that never triggered, a corrupted
	// line evicted unread). Masked faults are not false negatives.
	Masked bool
}

// String implements fmt.Stringer.
func (r InjectionResult) String() string {
	switch {
	case !r.Applied:
		return fmt.Sprintf("%v@%d node %d: not applied", r.Injection.Kind, r.Injection.Cycle, r.Injection.Node)
	case !r.Detected:
		return fmt.Sprintf("%v@%d node %d: NOT DETECTED", r.Injection.Kind, r.Injection.Cycle, r.Injection.Node)
	default:
		return fmt.Sprintf("%v@%d node %d: detected as %v after %d cycles (recoverable=%v)",
			r.Injection.Kind, r.Injection.Cycle, r.Injection.Node, r.DetectionKind, r.Latency, r.Recoverable)
	}
}

// SetStrict toggles the protocol-anomaly panics of all controllers.
// Injection campaigns disable them so corrupted protocol state becomes
// architecturally visible misbehaviour for DVMC to detect, rather than a
// simulator abort.
func (s *System) SetStrict(strict bool) {
	for _, c := range s.dirC {
		c.SetStrict(strict)
	}
	for _, h := range s.dirH {
		h.SetStrict(strict)
	}
	for _, c := range s.snpC {
		c.SetStrict(strict)
	}
	for _, h := range s.snpH {
		h.SetStrict(strict)
	}
}

// uoEvents counts UO replay mismatches across nodes (LSQ faults are
// detected and corrected inline by the verification stage, so they never
// reach the violation sink).
func (s *System) uoEvents() uint64 {
	var n uint64
	for _, u := range s.uo {
		if u != nil {
			n += u.Stats().LoadMismatches
		}
	}
	return n
}

// eccCorrections counts single-bit cache errors corrected by line ECC.
// The paper requires ECC on all cache lines precisely because silent
// cache corruptions are invisible to the epoch hash chain; a correction
// is a detected-and-recovered error.
func (s *System) eccCorrections() uint64 {
	var n uint64
	for _, c := range s.ctrls {
		n += c.ECCCorrected()
	}
	return n
}

// apply places the fault into the running system. It reports whether a
// target existed.
func (s *System) apply(inj Injection, rng *sim.Rand) bool {
	n := inj.Node % s.cfg.Nodes
	switch inj.Kind {
	case FaultMsgDrop, FaultMsgDuplicate, FaultMsgMisroute, FaultMsgReorder, FaultMsgDataFlip,
		FaultMsgStaleDup, FaultMsgReorderBurst:
		return s.armMessageFault(inj, rng)
	case FaultCacheDataFlip:
		blocks := s.ctrls[n].ResidentBlocks(64)
		if len(blocks) == 0 {
			return false
		}
		b := blocks[rng.Intn(len(blocks))]
		return s.ctrls[n].CorruptCacheBit(b, rng.Intn(mem.BlockBytes*8))
	case FaultMemoryDataFlip:
		memory := s.homeMemory(n)
		blocks := memory.SampleBlocks(64)
		if len(blocks) == 0 {
			return false
		}
		return memory.CorruptBit(blocks[rng.Intn(len(blocks))], rng.Intn(mem.BlockBytes*8))
	case FaultWBReorder:
		wb, ok := s.cpus[n].WriteBuffer().(*proc.InOrderWB)
		if !ok || wb.Len() < 2 {
			return false
		}
		wb.InjectReorder()
		return true
	case FaultWBDrop:
		switch wb := s.cpus[n].WriteBuffer().(type) {
		case *proc.InOrderWB:
			wb.InjectDropNext()
			return true
		case *proc.OOOWB:
			wb.InjectDropNext()
			return true
		default:
			return false
		}
	case FaultWBCorrupt:
		wb, ok := s.cpus[n].WriteBuffer().(*proc.InOrderWB)
		if !ok {
			return false
		}
		wb.InjectCorruptNext()
		return true
	case FaultLSQValue:
		s.cpus[n].InjectLoadValueFault()
		return true
	case FaultLSQForward:
		s.cpus[n].InjectForwardFault()
		return true
	case FaultPermissionDrop:
		blocks := s.ctrls[n].ResidentBlocks(64)
		for _, b := range blocks {
			if s.ctrls[n].DropPermissionFault(b) {
				return true
			}
		}
		return false
	case FaultSilentWrite:
		// Prefer blocks held without write permission: the interesting
		// controller fault skips the upgrade before writing.
		blocks := s.ctrls[n].ResidentReadOnlyBlocks(64)
		if len(blocks) == 0 {
			blocks = s.ctrls[n].ResidentBlocks(64)
		}
		if len(blocks) == 0 {
			return false
		}
		b := blocks[rng.Intn(len(blocks))]
		return s.ctrls[n].WriteWithoutPermissionFault(b.WordAddr(rng.Intn(mem.WordsPerBlock)),
			mem.Word(rng.Uint64()))
	case FaultCtrlStateCorrupt:
		// Demote direction first: silently downgrade a Modified line to
		// Shared, forgetting its writeback obligation. Only lines whose
		// data actually differs from the home memory image make the
		// ground truth solid — any later exercise of the corruption is
		// then a genuine lost update — so clean lines fall through to the
		// promote direction (upgrade S/O to M without a data grant).
		for _, b := range s.ctrls[n].ResidentBlocks(64) {
			if s.blockDirty(n, b) && s.ctrls[n].CorruptLineStateFault(b, false) {
				return true
			}
		}
		blocks := s.ctrls[n].ResidentReadOnlyBlocks(64)
		if len(blocks) == 0 {
			return false
		}
		return s.ctrls[n].CorruptLineStateFault(blocks[rng.Intn(len(blocks))], true)
	case FaultTimeSkew:
		ck := s.clocks[n]
		if ck == nil {
			// Snooping's logical time is the broadcast sequence number —
			// there is no physical clock to skew.
			return false
		}
		ck.InjectSkew(inj.magnitude() * skewDiv)
		return true
	case FaultNestedRecovery:
		// First rollback now; RunInjectionSystem issues the second one
		// inside the recovery window, before any fresh checkpoint.
		return s.Recover(inj.Cycle)
	default:
		panic(fmt.Sprintf("dvmc: unknown fault kind %v", inj.Kind))
	}
}

// wbFaultFired reports whether node n's write buffer saw an armed fault
// actually alter a drain.
func (s *System) wbFaultFired(n int) bool {
	switch wb := s.cpus[n].WriteBuffer().(type) {
	case *proc.InOrderWB:
		return wb.FaultFired()
	case *proc.OOOWB:
		return wb.FaultFired()
	default:
		return false
	}
}

// homeMemory returns node n's memory module.
func (s *System) homeMemory(n int) *mem.Memory {
	if len(s.dirH) > 0 {
		return s.dirH[n].Memory()
	}
	return s.snpH[n].Memory()
}

// blockDirty reports whether node n's cached copy of b differs from the
// block's home memory image. Fault-targeting cold path only.
func (s *System) blockDirty(n int, b mem.BlockAddr) bool {
	img := s.homeMemory(int(s.cfg.Memory.HomeOf(b))).ReadBlock(b)
	for w := 0; w < mem.WordsPerBlock; w++ {
		v, ok := s.ctrls[n].PeekWord(b.WordAddr(w))
		if !ok {
			return false
		}
		if v != img[w] {
			return true
		}
	}
	return false
}

// armMessageFault installs a network fault hook: one-shot for the
// single-message kinds, multi-capture for the reorder burst (it stays
// armed until Magnitude coherence messages are held, or the window
// closes).
func (s *System) armMessageFault(inj Injection, rng *sim.Rand) bool {
	kind := inj.Kind
	s.torus.SetFaultWindow(inj.window())
	armed := true
	burst := 0
	var burstAt sim.Cycle
	hook := func(m *network.Message) network.FaultAction {
		if !armed {
			return network.FaultNone
		}
		switch kind {
		case FaultMsgDataFlip:
			if !flipMessageData(m, rng) {
				return network.FaultNone // wait for a block-bearing message
			}
			armed = false
			s.msgFaultActivated = s.Now()
			s.torus.SetFaultHook(nil)
			return network.FaultCorrupt
		case FaultMsgDrop:
			// Dropping an Inform only degrades the checker; drop protocol
			// traffic so the error is architectural.
			if m.Class != network.ClassCoherence {
				return network.FaultNone
			}
			armed = false
			s.msgFaultActivated = s.Now()
			s.torus.SetFaultHook(nil)
			return network.FaultDrop
		case FaultMsgDuplicate:
			if m.Class != network.ClassCoherence {
				return network.FaultNone
			}
			armed = false
			s.msgFaultActivated = s.Now()
			s.torus.SetFaultHook(nil)
			return network.FaultDuplicate
		case FaultMsgMisroute:
			if m.Class != network.ClassCoherence {
				return network.FaultNone
			}
			armed = false
			s.msgFaultActivated = s.Now()
			s.torus.SetFaultHook(nil)
			return network.FaultMisroute
		case FaultMsgReorder:
			if m.Class != network.ClassCoherence {
				return network.FaultNone
			}
			armed = false
			s.msgFaultActivated = s.Now()
			s.torus.SetFaultHook(nil)
			return network.FaultDelay
		case FaultMsgStaleDup:
			if m.Class != network.ClassCoherence {
				return network.FaultNone
			}
			armed = false
			s.msgFaultActivated = s.Now()
			s.torus.SetFaultHook(nil)
			return network.FaultDupStale
		case FaultMsgReorderBurst:
			if m.Class != network.ClassCoherence {
				return network.FaultNone
			}
			if burst == 0 {
				burstAt = s.Now()
				s.msgFaultActivated = s.Now()
			} else if s.Now() >= burstAt+inj.window() {
				// The window closed before the burst filled; the torus
				// already released the partial burst at the deadline.
				armed = false
				s.torus.SetFaultHook(nil)
				return network.FaultNone
			}
			burst++
			if burst >= int(inj.magnitude()) {
				armed = false
				s.torus.SetFaultHook(nil)
			}
			return network.FaultHold
		default:
			panic(fmt.Sprintf("dvmc: armMessageFault with non-message fault %v", kind))
		}
	}
	s.torus.SetFaultHook(hook)
	return true
}

// flipMessageData flips one data bit in a block-bearing payload,
// reporting whether the message carried one.
func flipMessageData(m *network.Message, rng *sim.Rand) bool {
	bit := rng.Intn(mem.BlockBytes * 8)
	word, off := bit/64, bit%64
	switch p := m.Payload.(type) {
	case coherence.MsgData:
		p.Data[word] ^= 1 << off
		m.Payload = p
	case coherence.MsgPutM:
		p.Data[word] ^= 1 << off
		m.Payload = p
	case coherence.MsgRecallAck:
		p.Data[word] ^= 1 << off
		m.Payload = p
	case coherence.MsgSnoopData:
		p.Data[word] ^= 1 << off
		m.Payload = p
	case coherence.MsgSnoopWB:
		p.Data[word] ^= 1 << off
		m.Payload = p
	default:
		return false
	}
	return true
}

// RunInjection builds a system, runs it to the injection point, applies
// the fault, and observes detection. budget bounds the post-injection
// observation window in cycles.
func RunInjection(cfg Config, w Workload, inj Injection, budget uint64) (InjectionResult, error) {
	res, _, err := RunInjectionSystem(cfg, w, inj, budget)
	return res, err
}

// RunInjectionSystem is RunInjection with the finished system returned
// for verdict extraction: dvmc-fuzz's differential check needs the
// execution trace and the online violations alongside the injection
// ground truth, which RunInjection's summary result discards. Finite
// programs (workload.Custom specs) additionally end the observation
// window early once every thread finishes and drains; the statistical
// workload generators never finish, so RunInjection's behaviour is
// unchanged for them.
func RunInjectionSystem(cfg Config, w Workload, inj Injection, budget uint64) (InjectionResult, *System, error) {
	res := InjectionResult{Injection: inj}
	s, err := NewSystem(cfg, w)
	if err != nil {
		return res, nil, err
	}
	s.SetStrict(false)
	rng := sim.NewRand(cfg.Seed ^ (uint64(inj.Cycle)+uint64(inj.Node)*977)*0x9e3779b97f4a7c15)

	// Warm up to the injection point.
	s.kernel.RunUntil(s.Finished, uint64(inj.Cycle))
	baseUO := s.uoEvents()
	baseECC := s.eccCorrections()
	baseViolations := len(s.Violations())

	// Open the fault flight recording: checkpoint, recovery, and
	// violation transitions annotate it while the run observes, and the
	// verdict below closes it. The fire transition is back-filled at
	// close, once dormant-fault activation times are known.
	if s.spanRec != nil {
		s.spanRec.FaultOpen(uint8(inj.Kind), int32(inj.Node%s.cfg.Nodes), s.Now())
		defer func() {
			out := span.OutcomeEscape
			switch {
			case !res.Applied:
				out = span.OutcomeNotApplied
			case res.Detected:
				out = span.OutcomeDetected
			case res.Masked:
				out = span.OutcomeMasked
			}
			if res.Applied && res.ActivatedAt > 0 {
				s.spanRec.FaultEvent(span.LabelFired, res.ActivatedAt, uint64(inj.Kind), 0)
			}
			s.spanRec.FaultClose(out, s.Now())
		}()
	}

	res.Applied = s.apply(inj, rng)
	if !res.Applied {
		return res, s, nil
	}
	if s.spanRec != nil {
		s.spanRec.FaultEvent(span.LabelArmed, s.Now(), uint64(inj.Kind), 0)
	}
	// Stamp activation with the time the fault actually applied, not the
	// requested injection cycle: the warm-up stops early when every
	// thread drains before inj.Cycle, and a violation observed between
	// that point and inj.Cycle would otherwise drive the unsigned
	// latency subtraction below zero. (Found by the coverage campaign:
	// lt-skew runs reported ~2^64-cycle detection latencies.)
	res.ActivatedAt = s.Now()
	detected := func() bool {
		if inj.Kind == FaultNestedRecovery {
			// A legal double rollback injects no architectural error, so
			// there is nothing to "detect": post-recovery checker noise is
			// a false alarm (the differential verdict classifies it), never
			// a detection.
			return false
		}
		if inj.Kind == FaultLSQValue || inj.Kind == FaultLSQForward {
			// Attribute precisely: the corrupted load itself must fail
			// verification (benign mis-speculation mismatches on other
			// loads do not count), or some checker must fire.
			caught, squashed := s.cpus[inj.Node%s.cfg.Nodes].FaultOutcome()
			return caught || squashed || len(s.Violations()) > baseViolations
		}
		// Benign UO mismatches (load-order races) occur in fault-free
		// runs too; they attribute detection only for LSQ faults above.
		_ = baseUO
		return len(s.Violations()) > baseViolations || s.eccCorrections() > baseECC
	}
	// Observe until detection, or — for finite programs — until every
	// thread has finished and drained plus a settling grace (in-flight
	// coherence messages and queued informs can still surface a late
	// violation), or the budget expires. Statistical workloads never
	// finish, so their observation window is the full budget as before.
	grace := uint64(0)
	nestedDone := false
	s.kernel.RunUntil(func() bool {
		if inj.Kind == FaultNestedRecovery && !nestedDone && s.Now() >= inj.Cycle+inj.window() {
			// The second rollback, issued before any post-recovery
			// checkpoint: it re-restores the checkpoint the first recovery
			// used (recovery-during-recovery).
			nestedDone = true
			s.Recover(s.Now())
		}
		if detected() {
			return true
		}
		if s.Finished() {
			grace++
			return grace > finishGraceCycles
		}
		return false
	}, budget)
	if !detected() {
		// Give the MET a final ordered pass over settled informs.
		s.DrainCheckers()
	}
	// Dormant-fault activation time, where the system can report it.
	switch inj.Kind {
	case FaultLSQValue, FaultLSQForward:
		if at, ok := s.cpus[inj.Node%s.cfg.Nodes].FaultActivatedAt(); ok {
			res.ActivatedAt = at
		}
	case FaultCtrlStateCorrupt:
		// The corrupted state bits can sit unexercised for a long time;
		// the architectural error begins when a store performs under (or
		// a dirty copy is lost in) the corrupted state.
		if at, ok := s.ctrls[inj.Node%s.cfg.Nodes].StateFaultFired(); ok {
			res.ActivatedAt = at
		}
	default:
		// Other fault kinds activate at injection; ActivatedAt is set
		// where they are armed.
	case FaultMsgDrop, FaultMsgDuplicate, FaultMsgMisroute, FaultMsgReorder, FaultMsgDataFlip,
		FaultMsgStaleDup, FaultMsgReorderBurst:
		if s.msgFaultActivated > 0 {
			res.ActivatedAt = s.msgFaultActivated
		}
	}
	if detected() {
		res.Detected = true
		// Attribute detection latency: back-fill the activation time onto
		// the recorded violation events, populating the per-invariant
		// latency distributions in the telemetry registry.
		s.Telemetry().AttributeInjection(uint64(res.ActivatedAt))
		switch {
		case s.eccCorrections() > baseECC:
			// The flip was corrected in place on first use: detection and
			// recovery coincide; no rollback is needed.
			res.DetectionKind = core.ECCUncorrectable
			res.ActivatedAt = s.Now()
			res.Latency = 0
			res.Recoverable = true
			return res, s, nil
		case len(s.Violations()) > baseViolations:
			res.DetectionKind = s.Violations()[baseViolations].Kind
			res.Latency = s.Violations()[baseViolations].Cycle - res.ActivatedAt
		default:
			if _, squashed := s.cpus[inj.Node%s.cfg.Nodes].FaultOutcome(); squashed &&
				(inj.Kind == FaultLSQValue || inj.Kind == FaultLSQForward) {
				// Erased by a flush before verification: masked.
				res.Detected = false
				res.Masked = true
				return res, s, nil
			}
			res.DetectionKind = core.UOMismatch
			res.Latency = s.Now() - res.ActivatedAt
			// Inline UO-replay detections never reach the violation sink;
			// record their latency directly.
			s.Telemetry().ObserveLatency(core.UOMismatch.String(), uint64(res.Latency))
		}
		if s.snMgr != nil {
			if res.DetectionKind == core.OperationTimeout {
				// A hang produced no wrong architectural state; recovery
				// to any live checkpoint resets the lost protocol state.
				res.Recoverable = len(s.snMgr.Live()) > 0
			} else {
				_, res.Recoverable = s.snMgr.ValidFor(res.ActivatedAt)
			}
		}
		return res, s, nil
	}
	// Undetected: classify maskable outcomes.
	switch inj.Kind {
	case FaultMsgDuplicate, FaultMsgMisroute, FaultMsgReorder, FaultMsgStaleDup, FaultMsgReorderBurst:
		// Control messages are absorbed idempotently when no matching
		// transaction exists (a stale replay or a reversed burst included);
		// the fault left no architectural trace.
		res.Masked = true
	case FaultLSQValue, FaultLSQForward:
		cpu := s.cpus[inj.Node%s.cfg.Nodes]
		if _, activated := cpu.FaultActivatedAt(); !activated {
			res.Masked = true // armed but never triggered within the budget
		} else if _, squashed := cpu.FaultOutcome(); squashed {
			res.Masked = true // a mis-speculation flush erased the corruption
		}
	case FaultCacheDataFlip, FaultMemoryDataFlip:
		// The corrupted line was never consumed within the budget; under
		// ECC it will be corrected on first use.
		res.Masked = true
	case FaultWBCorrupt, FaultWBDrop:
		// Masked only if the armed fault never fired: the program drained
		// no further eligible store within the observation window, so the
		// fault left no architectural trace. A fired fault corrupted or
		// dropped a value on its way to the cache — the VC's per-store
		// value comparison (and the drain check for dropped stores)
		// detects those online, so an undetected fired fault is a genuine
		// escape, not a masking. (The old optimistic heuristic called
		// every undetected WB fault masked and was contradicted by the
		// offline oracle whenever the corrupt value actually performed.)
		res.Masked = !s.wbFaultFired(inj.Node % s.cfg.Nodes)
	case FaultCtrlStateCorrupt:
		// Masked while the corrupted state was never exercised (the line
		// was invalidated or re-granted before a store performed on a
		// promoted line, or before a demoted line's dirty copy was lost)
		// — and also when it fired without any later observation: every
		// post-corruption reuse of the block runs through the MET's epoch
		// checks (the detected runs fire data-propagation-mismatch or
		// epoch-overlap there), and an observed stale value reaches the
		// offline oracle, which the differential verdict turns into an
		// escape. A fired-but-undetected, oracle-silent run therefore had
		// no architecturally visible effect within the budget — latent
		// corruption, the same semantics as the data-flip classes.
		// (Found by the coverage campaign: a demotion firing during the
		// post-drain writeback flush, with no block reuse left to check,
		// was misclassified as an escape.)
		res.Masked = true
	case FaultTimeSkew, FaultNestedRecovery:
		// Skew perturbs only the verification metadata's time base, and a
		// correct double rollback leaves no architectural error: both are
		// probes of the checking machinery itself. Undetected is the
		// expected clean outcome; a bug surfaces as an offline-oracle
		// contradiction (escape) or online noise (false alarm) in the
		// differential verdict.
		res.Masked = true
	case FaultMsgDrop:
		// A fired drop is never maskable — it destroyed a real coherence
		// message. But the hook arms and then waits for eligible traffic;
		// if none passes within the budget — a quiet node, or an
		// injection cycle past the program's drain — nothing was dropped
		// and the fault is masked, the same armed-but-dormant semantics
		// the LSQ and write-buffer classes use. (Found by the coverage
		// campaign: empty-traffic cases were misclassified as escapes.)
		res.Masked = s.msgFaultActivated == 0
	case FaultMsgDataFlip:
		// Same armed-but-dormant rule; and a fired flip whose word is
		// never architecturally consumed within the budget is latent —
		// the in-flight corruption entered a cache line but no load
		// observed it, the same semantics as the cache/memory flip
		// classes. A consumed corrupted value is caught online by the
		// data-propagation check or offline by the oracle's value check,
		// which the differential verdict turns into an escape.
		res.Masked = true
	case FaultPermissionDrop:
		// Dropping a clean copy is architecturally an eviction — the next
		// access misses and refetches the same value, so nothing ever
		// differs. Dropping a dirty copy loses an update, but the loss is
		// observable only when a later access reads the stale home value:
		// the MET's data-propagation check catches that online, and the
		// oracle's value check catches it offline, so the differential
		// verdict turns any observed loss into an escape. Undetected and
		// oracle-silent means the drop was never architecturally consumed
		// within the budget — latent, the same doctrine as the ctrl-state
		// class. (Found by the coverage campaign: clean-copy drops were
		// misclassified as escapes.)
		res.Masked = true
	case FaultSilentWrite:
		// The faulty controller wrote a random word into a resident copy
		// without permission. Only a local load of that exact word can
		// consume the corruption — a remote writer invalidates the rogue
		// copy harmlessly, and a read-only copy is discarded unwritten on
		// eviction. The injector picks a uniform word in the block, so
		// most rogue writes land on words the program never loads; those
		// are latent. A consumed rogue value is caught online by the VC's
		// value comparison or offline by the oracle, which the masked
		// branch of the differential verdict reports as an escape. (Found
		// by the coverage campaign: unconsumed rogue writes were
		// misclassified as escapes.)
		res.Masked = true
	default:
		// FaultWBReorder: an undetected run is an escape, never maskable
		// — a fired reorder swapped two real writebacks on their way to
		// memory.
	}
	return res, s, nil
}

// CampaignResult aggregates an injection campaign. Results is indexed
// by injection number; a zero-value slot (Injection.Kind == 0) is a
// hole — an injection this partial result did not run. Holes let
// shard-sized partials from different workers combine with Merge into
// the same table a serial run produces.
type CampaignResult struct {
	Results []InjectionResult
}

// Occupied reports whether this slot holds an executed injection (fault
// kinds start at 1, so the zero value is recognisably a hole).
func (r InjectionResult) Occupied() bool { return r.Injection.Kind != 0 }

// Merge combines two slot-disjoint partial campaign results into one.
// Each slot must be occupied in at most one argument; because slots are
// disjoint, Merge(a, b) == Merge(b, a) and any association order over a
// set of partials yields the same result — the property the distributed
// fabric's coordinator relies on to be independent of shard completion
// order.
func Merge(a, b CampaignResult) (CampaignResult, error) {
	n := len(a.Results)
	if len(b.Results) > n {
		n = len(b.Results)
	}
	out := CampaignResult{Results: make([]InjectionResult, n)}
	for i := range out.Results {
		var av, bv InjectionResult
		if i < len(a.Results) {
			av = a.Results[i]
		}
		if i < len(b.Results) {
			bv = b.Results[i]
		}
		switch {
		case av.Occupied() && bv.Occupied():
			return CampaignResult{}, fmt.Errorf("dvmc: Merge: slot %d occupied in both partial results", i)
		case av.Occupied():
			out.Results[i] = av
		default:
			out.Results[i] = bv
		}
	}
	return out, nil
}

// Counts returns (applied, detected, masked, undetected) totals.
// Undetected excludes masked faults: it counts only faults that affected
// architectural state without any checker noticing — false negatives.
func (c CampaignResult) Counts() (applied, detected, masked, undetected int) {
	for _, r := range c.Results {
		if !r.Applied {
			continue
		}
		applied++
		switch {
		case r.Detected:
			detected++
		case r.Masked:
			masked++
		default:
			undetected++
		}
	}
	return
}

// KindLatency is one invariant's detection-latency sample across a
// campaign.
type KindLatency struct {
	Kind   core.ViolationKind
	Sample *stats.Sample
}

// LatencyByKind aggregates detection latencies per detecting invariant,
// sorted by invariant name — the campaign-level counterpart of the
// per-run telemetry registry's LatencyByInvariant (each injection runs
// in a fresh System, so per-run registries see one detection each).
func (c CampaignResult) LatencyByKind() []KindLatency {
	byKind := map[core.ViolationKind]*stats.Sample{}
	for _, r := range c.Results {
		if !r.Detected {
			continue
		}
		s := byKind[r.DetectionKind]
		if s == nil {
			s = &stats.Sample{}
			byKind[r.DetectionKind] = s
		}
		s.Add(float64(r.Latency))
	}
	out := make([]KindLatency, 0, len(byKind))
	for k, s := range byKind {
		out = append(out, KindLatency{Kind: k, Sample: s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind.String() < out[j].Kind.String() })
	return out
}

// MaxLatency returns the worst detection latency among detected faults.
func (c CampaignResult) MaxLatency() sim.Cycle {
	var m sim.Cycle
	for _, r := range c.Results {
		if r.Detected && r.Latency > m {
			m = r.Latency
		}
	}
	return m
}

// AllRecoverable reports whether every detected fault was caught while a
// pre-error checkpoint was still live.
func (c CampaignResult) AllRecoverable() bool {
	for _, r := range c.Results {
		if r.Detected && !r.Recoverable {
			return false
		}
	}
	return true
}

// DeriveCampaignInjections precomputes a campaign's n injections
// (random kind, node, and time, per the paper's methodology). The
// sequence is a pure function of cfg.Seed — the same stream RunCampaign
// has always drawn — so any subset of the campaign can be executed
// anywhere and still agree with the serial run.
func DeriveCampaignInjections(cfg Config, n int) []Injection {
	rng := sim.NewRand(cfg.Seed + 0xfa17)
	kinds := AllFaultKinds()
	out := make([]Injection, n)
	for i := range out {
		out[i] = Injection{
			Kind:  kinds[rng.Intn(len(kinds))],
			Node:  rng.Intn(cfg.Nodes),
			Cycle: sim.Cycle(2000 + rng.Intn(20000)),
		}
	}
	return out
}

// RunCampaignSlice executes injections [from, to) of a derived campaign
// into fresh systems and returns a partial CampaignResult of length
// len(injs) with only those slots occupied — the shard unit of the
// distributed fabric. Slot-disjoint partials combine with Merge.
func RunCampaignSlice(cfg Config, w Workload, injs []Injection, budget uint64, from, to int) (CampaignResult, error) {
	out := CampaignResult{Results: make([]InjectionResult, len(injs))}
	if from < 0 || to > len(injs) || from > to {
		return out, fmt.Errorf("dvmc: RunCampaignSlice: range [%d, %d) outside 0..%d", from, to, len(injs))
	}
	for i := from; i < to; i++ {
		r, err := RunInjection(cfg.WithSeed(cfg.Seed+uint64(i)), w, injs[i], budget)
		if err != nil {
			return out, fmt.Errorf("injection %d (%v): %w", i, injs[i].Kind, err)
		}
		out.Results[i] = r
	}
	return out, nil
}

// RunCampaign injects n random faults (random kind, node, and time, per
// the paper's methodology) into fresh systems and aggregates detection.
func RunCampaign(cfg Config, w Workload, n int, budget uint64) (CampaignResult, error) {
	return RunCampaignSlice(cfg, w, DeriveCampaignInjections(cfg, n), budget, 0, n)
}
