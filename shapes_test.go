package dvmc

// System-level shape assertions: the qualitative findings of the paper's
// evaluation that must hold in any faithful reproduction, checked as
// tests so regressions in the substrate surface immediately.

import (
	"testing"
)

func measure(t *testing.T, cfg Config, w Workload, txns uint64) Results {
	t.Helper()
	s, err := NewSystem(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(txns, 60_000_000)
	if err != nil {
		t.Fatal(err)
	}
	s.DrainCheckers()
	if v := s.Violations(); len(v) != 0 {
		t.Fatalf("clean run flagged: %v", v[0])
	}
	return res
}

// TestShapeWriteBufferBenefit: the TSO write buffer must not lose to SC
// on a store-heavy workload (paper 6.2.1: "the addition of a write
// buffer in the TSO system improves performance for almost all
// benchmarks").
func TestShapeWriteBufferBenefit(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Store-heavy with mostly private data: the regime the paper's
	// write-buffer claim describes. (An all-shared write storm instead
	// measures coherence ping-pong, where TSO's longer store pipeline
	// loses block ownership more often — not the Figure 3 scenario.)
	w := Uniform(512, 0.4)
	w.Params.PrivateFrac = 0.9
	base := func(m Model) uint64 {
		cfg := ScaledConfig().WithModel(m)
		cfg.DVMC = Off()
		cfg.SafetyNet = false
		return measure(t, cfg, w, 120).Cycles
	}
	sc, tso := base(SC), base(TSO)
	if float64(tso) > 1.05*float64(sc) {
		t.Errorf("TSO base (%d) materially slower than SC base (%d)", tso, sc)
	}
}

// TestShapeDVMCOverheadBounded: full protection must stay within a sane
// multiple of the paper's worst case (11%) on the directory system.
func TestShapeDVMCOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, w := range []Workload{OLTP(), Apache()} {
		base := ScaledConfig()
		base.DVMC = Off()
		base.SafetyNet = false
		b := measure(t, base, w, 120).Cycles
		p := measure(t, ScaledConfig(), w, 120).Cycles
		over := float64(p)/float64(b) - 1
		if over > 0.30 {
			t.Errorf("%s: DVMC overhead %.1f%% implausibly high", w.Name, 100*over)
		}
		if over < -0.10 {
			t.Errorf("%s: DVMC faster than base by %.1f%%; accounting broken?", w.Name, -100*over)
		}
	}
}

// TestShapeInformTrafficProportional: inform messages track epoch ends,
// which track coherence activity ("Inform-Epoch traffic is proportional
// to coherence traffic").
func TestShapeInformTrafficProportional(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	small := measure(t, ScaledConfig(), Uniform(128, 0.5), 60)
	large := measure(t, ScaledConfig().WithSeed(3), Uniform(2048, 0.5), 60)
	// The bigger footprint forces more misses, hence more epochs and
	// more informs.
	if large.L2Misses <= small.L2Misses {
		t.Skip("footprint did not change miss count; nothing to compare")
	}
	if large.Informs <= small.Informs {
		t.Errorf("informs not proportional: %d misses -> %d informs vs %d misses -> %d informs",
			small.L2Misses, small.Informs, large.L2Misses, large.Informs)
	}
}

// TestShapeReplayMissesRare: paper Figure 6 — replay misses are a tiny
// fraction of demand misses on every workload.
func TestShapeReplayMissesRare(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, w := range Workloads() {
		res := measure(t, ScaledConfig(), w, 60)
		if r := res.ReplayMissRatio(); r > 0.25 {
			t.Errorf("%s: replay miss ratio %.3f not rare", w.Name, r)
		}
	}
}

// TestShapeSingleNodeNearZeroOverhead: with one processor all
// verification traffic is loopback and no sharing exists; DVMC must be
// nearly free (Figure 9's left edge).
func TestShapeSingleNodeNearZeroOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	base := ScaledConfig().WithNodes(1)
	base.DVMC = Off()
	base.SafetyNet = false
	b := measure(t, base, JBB(), 40).Cycles
	p := measure(t, ScaledConfig().WithNodes(1), JBB(), 40).Cycles
	if over := float64(p)/float64(b) - 1; over > 0.10 {
		t.Errorf("single-node DVMC overhead %.1f%%, want near zero", 100*over)
	}
}

// TestShapeCheckerActivity: in a protected run every checker must
// actually be exercising its invariant (non-zero activity), otherwise
// the "zero violations" property is vacuous.
func TestShapeCheckerActivity(t *testing.T) {
	cfg := ScaledConfig()
	s, err := NewSystem(cfg, OLTP())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(60, 30_000_000); err != nil {
		t.Fatal(err)
	}
	var replays, checked, accesses, informs uint64
	for n := 0; n < cfg.Nodes; n++ {
		replays += s.UOStats(n).LoadsReplayed
		checked += s.ReorderStats(n).OpsChecked
		accesses += s.CETStats(n).Accesses
		informs += s.METStats(n).InformsProcessed
	}
	if replays == 0 || checked == 0 || accesses == 0 || informs == 0 {
		t.Errorf("idle checker: replays=%d reorderChecked=%d cetAccesses=%d metInforms=%d",
			replays, checked, accesses, informs)
	}
}

// TestShapeSnoopingCheaperThanDirectory: the paper finds greater DVMC
// overheads on the directory system.
func TestShapeSnoopingCheaperThanDirectory(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	overhead := func(p Protocol) float64 {
		base := ScaledConfig().WithProtocol(p)
		base.DVMC = Off()
		base.SafetyNet = false
		b := measure(t, base, OLTP(), 100).Cycles
		f := measure(t, ScaledConfig().WithProtocol(p), OLTP(), 100).Cycles
		return float64(f) / float64(b)
	}
	dir, snp := overhead(Directory), overhead(Snooping)
	if snp > dir+0.10 {
		t.Errorf("snooping overhead (%.3f) much larger than directory (%.3f); paper shape inverted", snp, dir)
	}
}
