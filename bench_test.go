package dvmc

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (Section 6). Each BenchmarkFigureN runs the
// corresponding experiment and reports the headline numbers as benchmark
// metrics; `go test -bench . -benchmem` therefore reproduces the whole
// evaluation. EXPERIMENTS.md records paper-vs-measured values.
//
// Absolute cycle counts cannot match the paper (the substrate is this
// repository's simulator, not Simics/GEMS on a Sun testbed); the shapes
// the benches report are the comparison targets: who wins, by what
// factor, and where the sensitivities lie.

import (
	"fmt"
	"testing"

	"dvmc/internal/sim"
)

// benchOpts sizes the figure benches: one repetition, enough
// transactions for stable ratios.
func benchOpts() ExperimentOpts {
	return ExperimentOpts{Transactions: 80, MaxCycles: 30_000_000, Repetitions: 1, SeedBase: 7}
}

// reportTable prints a figure table once (benchmarks run with b.N >= 1;
// the table is identical across iterations).
func reportTable(b *testing.B, t Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if b.N > 0 {
		b.Logf("\n%s", t)
	}
}

// BenchmarkFigure3 regenerates Figure 3: base vs DVMC runtimes per
// consistency model on the directory system, normalised to SC-base.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := FigureRuntimes(Directory, benchOpts())
		reportTable(b, t, err)
		// Headline metric: worst DVMC slowdown vs its own base.
		b.ReportMetric(worstSlowdown(t), "worst-slowdown")
	}
}

// BenchmarkFigure4 regenerates Figure 4: the snooping system.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := FigureRuntimes(Snooping, benchOpts())
		reportTable(b, t, err)
		b.ReportMetric(worstSlowdown(t), "worst-slowdown")
	}
}

// worstSlowdown extracts max(dvmc/base) across workloads and models from
// a FigureRuntimes table.
func worstSlowdown(t Table) float64 {
	worst := 0.0
	for i := range t.Rows {
		for j := 0; j+1 < len(t.Cols); j += 2 {
			base, dvmc := t.Cells[i][j].Mean, t.Cells[i][j+1].Mean
			if base > 0 && dvmc/base > worst {
				worst = dvmc / base
			}
		}
	}
	return worst
}

// BenchmarkFigure5 regenerates the component breakdown (Base, SN,
// SN+DVCC, SN+DVUO, DVTSO).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := Figure5(benchOpts())
		reportTable(b, t, err)
		// Metric: mean full-system overhead across workloads.
		sum := 0.0
		for i := range t.Rows {
			sum += t.Cells[i][len(t.Cols)-1].Mean
		}
		b.ReportMetric(sum/float64(len(t.Rows)), "mean-dvtso-slowdown")
	}
}

// BenchmarkFigure6 regenerates the replay-miss ratio figure.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := Figure6(benchOpts())
		reportTable(b, t, err)
		worst := 0.0
		for i := range t.Rows {
			if t.Cells[i][0].Mean > worst {
				worst = t.Cells[i][0].Mean
			}
		}
		b.ReportMetric(worst, "worst-replay-miss-ratio")
	}
}

// BenchmarkFigure7 regenerates the hottest-link bandwidth figure and the
// inform-traffic overhead ratio the paper quotes (20-30% for DVCC).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := Figure7(benchOpts())
		reportTable(b, t, err)
		// DVCC traffic overhead: (SN+DVCC)/SN - 1, averaged.
		sum, n := 0.0, 0
		for i := range t.Rows {
			sn, dvcc := t.Cells[i][1].Mean, t.Cells[i][2].Mean
			if sn > 0 {
				sum += dvcc/sn - 1
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), "dvcc-traffic-overhead")
		}
	}
}

// BenchmarkFigure8 regenerates the link-bandwidth sensitivity sweep.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := Figure8(benchOpts())
		reportTable(b, t, err)
		// Metric: spread between best and worst bandwidth points (the
		// paper finds no statistically significant correlation).
		min, max := t.Cells[0][0].Mean, t.Cells[0][0].Mean
		for i := range t.Rows {
			v := t.Cells[i][0].Mean
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		b.ReportMetric(max-min, "bandwidth-sensitivity-spread")
	}
}

// BenchmarkFigure9 regenerates the processor-count scaling sweep.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := Figure9(benchOpts())
		reportTable(b, t, err)
		min, max := t.Cells[0][0].Mean, t.Cells[0][0].Mean
		for i := range t.Rows {
			v := t.Cells[i][0].Mean
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		b.ReportMetric(max-min, "scaling-sensitivity-spread")
	}
}

// BenchmarkErrorDetection regenerates the Section 6.1 experiment: a
// fault-injection campaign per model and protocol.
func BenchmarkErrorDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := ErrorDetectionTable(6, 300_000, 42, 1)
		reportTable(b, t, err)
		var applied, detected, undetected float64
		for i := range t.Rows {
			applied += t.Cells[i][0].Mean
			detected += t.Cells[i][1].Mean
			undetected += t.Cells[i][3].Mean
		}
		if applied > 0 {
			b.ReportMetric(detected/applied, "detection-rate")
		}
		b.ReportMetric(undetected, "false-negatives")
	}
}

// BenchmarkTables2to4 verifies the ordering tables are loaded exactly as
// printed in the paper (Tables 2-4) — a correctness bench rather than a
// performance one; it reports constraints checked per second.
func BenchmarkTables2to4(b *testing.B) {
	// The consistency unit tests assert the table contents; here we
	// measure the checker-side lookup rate, since every performed
	// operation consults the tables.
	sys, err := NewSystem(smallConfig(), Uniform(128, 0.7))
	if err != nil {
		b.Fatal(err)
	}
	_ = sys
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSystem(smallConfig(), Uniform(128, 0.7))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(20, 5_000_000); err != nil {
			b.Fatal(err)
		}
		st := s.ReorderStats(0)
		b.ReportMetric(float64(st.OpsChecked), "ops-checked")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// cycles per wall-clock second for the full 8-node DVMC system.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := ScaledConfig()
	s, err := NewSystem(cfg, OLTP())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunCycles(10_000)
	}
	b.ReportMetric(10_000, "cycles/op")
}

// BenchmarkAblationVerifyWindow quantifies the design choice DESIGN.md
// calls out: eager parallel replay in the verification stage. It
// compares DVMC runtime with replay parallelism against the same system
// where the VC is sized to one word (forcing head-of-line replay).
func BenchmarkAblationVerifyWindow(b *testing.B) {
	run := func(vcWords int) float64 {
		cfg := ScaledConfig()
		cfg.Proc.VCWords = vcWords
		s, err := NewSystem(cfg, OLTP())
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run(60, 30_000_000)
		if err != nil {
			b.Fatal(err)
		}
		return float64(res.Cycles)
	}
	for i := 0; i < b.N; i++ {
		wide := run(64)
		narrow := run(2)
		b.ReportMetric(narrow/wide, "narrow-vc-slowdown")
	}
}

// BenchmarkAblationHashWidth measures CRC-16 signature throughput (the
// hashing is on the inform path; the paper trades coverage vs storage).
func BenchmarkAblationHashWidth(b *testing.B) {
	sys, err := NewSystem(smallConfig(), Uniform(256, 0.5))
	if err != nil {
		b.Fatal(err)
	}
	res := sys.RunCycles(20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = res.Informs
	}
	b.ReportMetric(float64(res.Informs), "informs-per-20k-cycles")
}

// BenchmarkAblationMembarInjection sweeps the artificial-membar period
// (the paper: about one per 100k cycles, "negligible performance
// impact") and reports the runtime ratio between aggressive (1k) and
// paper-rate (100k) injection.
func BenchmarkAblationMembarInjection(b *testing.B) {
	run := func(interval sim.Cycle) float64 {
		cfg := ScaledConfig()
		cfg.Proc.MembarInjectionInterval = interval
		s, err := NewSystem(cfg, Apache())
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run(60, 30_000_000)
		if err != nil {
			b.Fatal(err)
		}
		return float64(res.Cycles)
	}
	for i := 0; i < b.N; i++ {
		paper := run(100_000)
		aggressive := run(1_000)
		b.ReportMetric(aggressive/paper, "membar-1k-vs-100k")
	}
}

// BenchmarkAblationBlockingDirectory reports directory queueing pressure
// (DESIGN.md ablation: the blocking home simplification).
func BenchmarkAblationBlockingDirectory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := NewSystem(ScaledConfig(), Slashcode())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(60, 30_000_000); err != nil {
			b.Fatal(err)
		}
		var queued, gets uint64
		for n := 0; n < 8; n++ {
			st := s.dirH[n].Stats()
			queued += st.QueuedConflicts
			gets += st.GetS + st.GetM
		}
		if gets > 0 {
			b.ReportMetric(float64(queued)/float64(gets), "queued-per-request")
		}
	}
}

// BenchmarkTraceOverhead measures the simulation-speed cost of execution-
// trace capture: wall-clock time for an identical OLTP run with the
// recorder attached versus detached. The recorder's hot path is one ring
// store per commit/perform event; the target (EXPERIMENTS.md) is <10%
// overhead so differential verification can stay on in long campaigns.
func BenchmarkTraceOverhead(b *testing.B) {
	run := func(b *testing.B, traced bool) {
		cfg := ScaledConfig()
		if traced {
			cfg = cfg.WithTrace(TraceOn())
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := NewSystem(cfg, OLTP())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Run(60, 30_000_000); err != nil {
				b.Fatal(err)
			}
			if traced {
				data, err := s.TraceBytes()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(data)), "trace-bytes")
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// Example of using the table printer (exercised by go vet's example
// checks).
func ExampleTable() {
	t := Table{
		Title: "demo",
		Rows:  []string{"row"},
		Cols:  []string{"col"},
		Cells: [][]Cell{{{Mean: 1.5, Std: 0.1}}},
	}
	fmt.Print(t.String()[:4])
	// Output: demo
}
