package dvmc

import (
	"strings"
	"testing"
)

// TestFigureHarnessSmoke runs each figure harness at minimal size and
// checks structural sanity: every cell populated, positive baselines,
// correct normalisation anchors.
func TestFigureHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration is slow")
	}
	opts := ExperimentOpts{Transactions: 24, MaxCycles: 20_000_000, Repetitions: 1, SeedBase: 5}

	t.Run("figure3", func(t *testing.T) {
		tab, err := FigureRuntimes(Directory, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertTableShape(t, tab, 5, 8)
		// SC-base is the normalisation anchor: exactly 1.0 per row.
		for i := range tab.Rows {
			if tab.Cells[i][0].Mean != 1.0 {
				t.Errorf("%s: SC-base = %v, want 1.0", tab.Rows[i], tab.Cells[i][0].Mean)
			}
		}
	})

	t.Run("figure5", func(t *testing.T) {
		tab, err := Figure5(opts)
		if err != nil {
			t.Fatal(err)
		}
		assertTableShape(t, tab, 5, 5)
		for i := range tab.Rows {
			if tab.Cells[i][0].Mean != 1.0 {
				t.Errorf("%s: base cell not 1.0", tab.Rows[i])
			}
		}
	})

	t.Run("figure6", func(t *testing.T) {
		tab, err := Figure6(opts)
		if err != nil {
			t.Fatal(err)
		}
		assertTableShape(t, tab, 5, 1)
		for i := range tab.Rows {
			if r := tab.Cells[i][0].Mean; r < 0 || r > 1 {
				t.Errorf("%s: replay ratio %v out of [0,1]", tab.Rows[i], r)
			}
		}
	})

	t.Run("figure7", func(t *testing.T) {
		tab, err := Figure7(opts)
		if err != nil {
			t.Fatal(err)
		}
		assertTableShape(t, tab, 5, 4)
		for i := range tab.Rows {
			for j := range tab.Cols {
				if tab.Cells[i][j].Mean <= 0 {
					t.Errorf("%s/%s: non-positive bandwidth", tab.Rows[i], tab.Cols[j])
				}
			}
		}
	})
}

func TestFigure8And9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	opts := ExperimentOpts{Transactions: 16, MaxCycles: 20_000_000, Repetitions: 1, SeedBase: 5}
	tab8, err := Figure8(opts)
	if err != nil {
		t.Fatal(err)
	}
	assertTableShape(t, tab8, 5, 1)
	tab9, err := Figure9(opts)
	if err != nil {
		t.Fatal(err)
	}
	assertTableShape(t, tab9, 4, 1)
	// Slowdowns must stay in a sane band.
	for i := range tab9.Rows {
		v := tab9.Cells[i][0].Mean
		if v < 0.5 || v > 3 {
			t.Errorf("figure 9 row %s: slowdown %v implausible", tab9.Rows[i], v)
		}
	}
}

func TestErrorDetectionTableSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	tab, err := ErrorDetectionTable(3, 150_000, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertTableShape(t, tab, 8, 4)
	for i := range tab.Rows {
		if undetected := tab.Cells[i][3].Mean; undetected != 0 {
			t.Errorf("%s: %v false negatives", tab.Rows[i], undetected)
		}
	}
}

func assertTableShape(t *testing.T, tab Table, rows, cols int) {
	t.Helper()
	if len(tab.Rows) != rows || len(tab.Cols) != cols {
		t.Fatalf("table %dx%d, want %dx%d", len(tab.Rows), len(tab.Cols), rows, cols)
	}
	if len(tab.Cells) != rows {
		t.Fatalf("cells rows %d", len(tab.Cells))
	}
	for _, r := range tab.Cells {
		if len(r) != cols {
			t.Fatalf("cells cols %d", len(r))
		}
	}
	if tab.String() == "" || !strings.Contains(tab.String(), tab.Rows[0]) {
		t.Error("table does not render")
	}
}

// TestFigureTablesIdenticalAcrossWorkerCounts is the harness-level
// determinism regression: the parallel job matrix must produce the same
// rendered table as a serial run, at several worker counts including
// more workers than jobs.
func TestFigureTablesIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration is slow")
	}
	opts := ExperimentOpts{Transactions: 16, MaxCycles: 20_000_000, Repetitions: 1, SeedBase: 5, Workers: 1}
	serial, err := Figure6(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 64} {
		opts.Workers = workers
		par, err := Figure6(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.String() != serial.String() {
			t.Errorf("workers=%d: table differs from serial run\nserial:\n%s\nparallel:\n%s", workers, serial, par)
		}
	}

	serial5, err := Figure5(ExperimentOpts{Transactions: 16, MaxCycles: 20_000_000, Repetitions: 1, SeedBase: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par5, err := Figure5(ExperimentOpts{Transactions: 16, MaxCycles: 20_000_000, Repetitions: 1, SeedBase: 5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if par5.String() != serial5.String() {
		t.Errorf("figure 5: parallel table differs from serial run\nserial:\n%s\nparallel:\n%s", serial5, par5)
	}
}

func TestQuickAndDefaultOpts(t *testing.T) {
	if DefaultExperimentOpts().Repetitions < 1 || QuickExperimentOpts().Repetitions < 1 {
		t.Error("bad default opts")
	}
}
