package dvmc

import (
	"fmt"

	"dvmc/internal/coherence"
	"dvmc/internal/core"
	"dvmc/internal/mem"
	"dvmc/internal/network"
	"dvmc/internal/proc"
	"dvmc/internal/safetynet"
	"dvmc/internal/sim"
	"dvmc/internal/span"
	"dvmc/internal/telemetry"
	"dvmc/internal/trace"
	"dvmc/internal/workload"
)

// Workload re-exports the workload specification type.
type Workload = workload.Spec

// The five paper workloads (Table 8), the synthetic stress generator,
// and the programmatic-construction hook (explicit per-thread programs;
// dvmc-fuzz builds its randomized litmus specs this way).
var (
	Apache         = workload.Apache
	OLTP           = workload.OLTP
	JBB            = workload.JBB
	Slashcode      = workload.Slashcode
	Barnes         = workload.Barnes
	Uniform        = workload.Uniform
	CustomWorkload = workload.Custom
	Workloads      = workload.All
	WorkloadNames  = workload.Names
)

// WorkloadByName resolves a workload by its Table 8 name
// (case-insensitive); the error lists the known names.
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// Violation re-exports the checker violation record.
type Violation = core.Violation

// System is one assembled multiprocessor with optional DVMC and
// SafetyNet. Build with NewSystem; drive with Run or Step.
type System struct {
	cfg Config

	kernel *sim.Kernel
	torus  *network.Torus
	bcast  *network.BroadcastTree // snooping only

	ctrls []coherence.Controller
	dirC  []*coherence.DirCache
	dirH  []*coherence.DirHome
	snpC  []*coherence.SnoopCache
	snpH  []*coherence.SnoopHome

	// clocks retains the directory system's per-node skewed clocks so
	// fault injection can skew them; nil entries under snooping (whose
	// logical time is the broadcast sequence, not a physical clock).
	clocks []*coherence.SkewedClock

	cpus  []*proc.CPU
	progs []proc.Program

	uo      []*core.UniprocChecker
	reorder []*core.ReorderChecker
	cet     []*core.CacheChecker
	met     []*core.MemChecker

	// informPool recycles CET→MET inform messages; each inform is
	// released back to the pool right after its MET handler returns
	// (Handle copies what it keeps). One pool per System — the sim is
	// single-threaded within a system.
	informPool *core.InformPool

	snMgr     *safetynet.Manager
	snLoggers []*safetynet.Logger

	// rec captures the execution trace when Config.Trace is enabled. One
	// shared recorder preserves the global chronological order of events
	// across processors, which the offline oracle's value checks rely on.
	// tracer is the sink the processors actually emit into: the recorder,
	// an extra Config.Trace.Sink (a live streaming checker), or a tee of
	// both. rec is nil in SinkOnly mode.
	rec    *trace.Recorder
	tracer trace.Sink

	// reg is the telemetry registry (always built; see telemetry.go);
	// sampler is scheduled on the kernel only when Config.Telemetry is
	// enabled.
	reg     *telemetry.Registry
	sampler *telemetry.Sampler

	// spanRec is the causal span recorder; nil unless Config.Spans is
	// enabled (see spans.go).
	spanRec *span.Recorder

	violations  core.CollectorSink
	onViolation func(Violation)
	stop        bool

	// msgFaultActivated records when an armed message fault fired.
	msgFaultActivated sim.Cycle
}

// snoopClock adapts the broadcast sequence number as the snooping
// logical time base.
type snoopClock struct{ bt *network.BroadcastTree }

func (c snoopClock) LogicalNow() uint64 { return c.bt.Sequence() }

// fanEpoch fans epoch events out to the CET checker (if any) and the
// CPU's mis-speculation squash hook.
type fanEpoch struct {
	cet *core.CacheChecker
	cpu *proc.CPU
}

func (f fanEpoch) EpochBegin(b mem.BlockAddr, k coherence.EpochKind, lt uint64, known bool, d mem.Block) {
	if f.cet != nil {
		f.cet.EpochBegin(b, k, lt, known, d)
	}
}

func (f fanEpoch) EpochData(b mem.BlockAddr, d mem.Block) {
	if f.cet != nil {
		f.cet.EpochData(b, d)
	}
}

func (f fanEpoch) EpochEnd(b mem.BlockAddr, k coherence.EpochKind, lt uint64, d mem.Block) {
	if f.cet != nil {
		f.cet.EpochEnd(b, k, lt, d)
	}
	f.cpu.EpochEnd(b)
}

// fanAccess fans cache-access events out to the CET checker and the
// SafetyNet write logger.
type fanAccess struct {
	cet    *core.CacheChecker
	logger *safetynet.Logger
}

func (f fanAccess) Access(b mem.BlockAddr, write bool) {
	if f.cet != nil {
		f.cet.Access(b, write)
	}
	if f.logger != nil {
		f.logger.Access(b, write)
	}
}

// skewDiv divides the raw cycle count into the directory system's
// logical time: one logical tick per skewDiv cycles, with a per-node
// skew of node%skewDiv raw cycles — below the minimum network latency,
// as DVMC's logical-time base requires.
const skewDiv = uint64(8)

// NewSystem assembles a multiprocessor running the given workload: one
// thread per node.
func NewSystem(cfg Config, w Workload) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	w = w.WithThreads(cfg.Nodes).WithModel(cfg.Model)

	s := &System{cfg: cfg, kernel: &sim.Kernel{}}
	rng := sim.NewRand(cfg.Seed)
	now := s.kernel.Now

	if cfg.Trace.Enabled {
		if !cfg.Trace.SinkOnly {
			rec, err := trace.NewRecorder(cfg.Trace, cfg.TraceMeta())
			if err != nil {
				return nil, err
			}
			s.rec = rec
			s.tracer = rec
		}
		if extra := cfg.Trace.Sink; extra != nil {
			if s.tracer != nil {
				s.tracer = trace.TeeSink{A: s.tracer, B: extra}
			} else {
				s.tracer = extra
			}
		}
	}

	s.torus = network.NewTorus(cfg.Nodes, cfg.bytesPerCycle(), cfg.HopLatency, rng.Fork(1000))
	s.kernel.Register(s.torus)
	if cfg.Protocol == Snooping {
		s.bcast = network.NewBroadcastTree(cfg.Nodes, cfg.bytesPerCycle(), cfg.HopLatency/3+1, rng.Fork(1001))
		s.kernel.Register(s.bcast)
	}

	// The directory system's logical time: a slow physical clock with
	// per-node skew below the minimum network latency (see skewDiv).
	nodeClock := func(n int) coherence.LogicalClock {
		if cfg.Protocol == Snooping {
			s.clocks = append(s.clocks, nil)
			return snoopClock{bt: s.bcast}
		}
		ck := coherence.NewSkewedClock(now, uint64(n)%skewDiv, skewDiv)
		s.clocks = append(s.clocks, ck)
		return ck
	}

	// SafetyNet manager must tick first so checkpoints capture
	// cycle-start state.
	if cfg.SafetyNet {
		s.snMgr = safetynet.NewManager(cfg.SNConfig, s.capture, s.restore)
		s.kernel.Register(s.snMgr)
	}

	if cfg.DVMC.CacheCoherence {
		s.informPool = &core.InformPool{}
	}

	for n := 0; n < cfg.Nodes; n++ {
		nid := network.NodeID(n)
		clock := nodeClock(n)

		// Coherence substrate.
		var ctrl coherence.Controller
		memory := mem.NewMemory(cfg.Memory.CacheECC)
		var met *core.MemChecker
		if cfg.DVMC.CacheCoherence {
			met = core.NewMemChecker(nid, cfg.Memory, clock, now, s.sink())
			s.met = append(s.met, met)
		}
		switch cfg.Protocol {
		case Directory:
			dc := coherence.NewDirCache(nid, cfg.Memory, s.torus, clock)
			dh := coherence.NewDirHome(nid, cfg.Memory, s.torus, memory)
			if met != nil {
				dh.SetNewBlockListener(met.BlockRequested)
			}
			s.torus.SetHandler(nid, coherence.DirectoryHandler(dc, dh, s.informFallback(met)))
			s.dirC = append(s.dirC, dc)
			s.dirH = append(s.dirH, dh)
			ctrl = dc
			s.kernel.Register(dh)
			s.kernel.Register(dc)
		case Snooping:
			sc := coherence.NewSnoopCache(nid, cfg.Memory, s.bcast, s.torus)
			sh := coherence.NewSnoopHome(nid, cfg.Memory, s.torus, memory)
			if met != nil {
				sh.SetNewBlockListener(met.BlockRequested)
			}
			s.bcast.SetHandler(nid, coherence.SnoopingAddressHandler(sc, sh))
			s.torus.SetHandler(nid, coherence.SnoopingDataHandler(sc, sh, s.informFallback(met)))
			s.snpC = append(s.snpC, sc)
			s.snpH = append(s.snpH, sh)
			ctrl = sc
			s.kernel.Register(sh)
			s.kernel.Register(sc)
		}
		s.ctrls = append(s.ctrls, ctrl)
		if met != nil {
			s.kernel.Register(met)
		}

		// Core.
		prog := w.NewProgram(n, cfg.Seed)
		cpu := proc.NewCPU(nid, cfg.Proc, cfg.Model, ctrl, prog)
		if s.tracer != nil {
			cpu.AttachTracer(s.tracer)
		}
		s.progs = append(s.progs, prog)
		s.cpus = append(s.cpus, cpu)

		// DVMC checkers.
		var uo *core.UniprocChecker
		var ro *core.ReorderChecker
		if cfg.DVMC.UniprocessorOrdering {
			uo = core.NewUniprocChecker(nid, cfg.Proc.VCWords, cfg.Model == RMO, s.sink())
		}
		if cfg.DVMC.AllowableReordering {
			ro = core.NewReorderChecker(nid, s.sink())
		}
		if uo != nil || ro != nil {
			// The pipeline's verification stage needs a VC even if only
			// the reorder checker was requested; keep the pairing simple
			// by requiring UO for the verify stage and tolerating a
			// reorder-only configuration without it.
			cpu.AttachDVMC(uo, ro)
		}
		s.uo = append(s.uo, uo)
		s.reorder = append(s.reorder, ro)

		var cet *core.CacheChecker
		if cfg.DVMC.CacheCoherence {
			cet = core.NewCacheChecker(nid, cfg.Memory, s.torus, clock, now, s.sink())
			cet.SetInformPool(s.informPool)
			s.cet = append(s.cet, cet)
			s.kernel.Register(cet)
		}

		var logger *safetynet.Logger
		if cfg.SafetyNet {
			logger = safetynet.NewLogger(nid, cfg.Memory.HomeOf, s.torus, s.snMgr)
			s.snLoggers = append(s.snLoggers, logger)
			s.kernel.Register(logger)
		}

		ctrl.SetEpochListener(fanEpoch{cet: cet, cpu: cpu})
		if cet != nil || logger != nil {
			ctrl.SetAccessListener(fanAccess{cet: cet, logger: logger})
		}

		s.kernel.Register(cpu)
	}

	// Telemetry last: the sampler (if enabled) must tick after every
	// component so each sample observes the cycle's final state. The
	// span phase sampler follows for the same reason.
	s.buildTelemetry(cfg)
	s.buildSpans(cfg)
	return s, nil
}

// informFallback wraps a MET's Handle so each delivered inform is
// returned to the system's pool once the checker has consumed it.
// MemChecker.Handle is synchronous and copies everything it retains, so
// release-after-handle is safe; coherence traffic never reaches the
// fallback handler.
func (s *System) informFallback(met *core.MemChecker) network.Handler {
	if met == nil {
		return nil
	}
	pool := s.informPool
	return func(m *network.Message) {
		met.Handle(m)
		pool.Release(m)
	}
}

// sink returns the violation sink shared by all checkers.
func (s *System) sink() core.Sink {
	return core.SinkFunc(func(v Violation) {
		// Benign UO load mismatches are resolved by a pipeline flush and
		// are not errors; everything else is a detected violation.
		if v.Kind == core.UOMismatch {
			return
		}
		s.violations.Violation(v)
		s.recordViolation(v)
		if s.spanRec != nil {
			s.spanRec.FaultEvent(span.LabelViolation, v.Cycle, uint64(v.Kind), uint64(v.Block))
		}
		if s.onViolation != nil {
			s.onViolation(v)
		}
		if s.cfg.StopOnViolation {
			s.stop = true
		}
	})
}

// OnViolation installs a callback fired for every detected violation.
func (s *System) OnViolation(fn func(Violation)) { s.onViolation = fn }

// Now returns the current cycle.
func (s *System) Now() sim.Cycle { return s.kernel.Now() }

// Transactions returns the total committed transactions across nodes.
func (s *System) Transactions() uint64 {
	var t uint64
	for _, c := range s.cpus {
		t += c.Transactions()
	}
	return t
}

// Step advances one cycle.
func (s *System) Step() { s.kernel.Step() }

// Run simulates until the system commits the given number of
// transactions (across all nodes), a violation stops it (with
// StopOnViolation), or the cycle budget expires. It returns the results
// and an error if the budget expired first.
func (s *System) Run(transactions uint64, maxCycles uint64) (Results, error) {
	start := s.kernel.Now()
	startTxns := s.Transactions()
	done := func() bool {
		return s.stop || s.Transactions()-startTxns >= transactions
	}
	finished := s.kernel.RunUntil(done, maxCycles)
	res := s.results(start)
	if !finished {
		return res, fmt.Errorf("dvmc: %d of %d transactions after %d cycles",
			s.Transactions()-startTxns, transactions, maxCycles)
	}
	return res, nil
}

// RunCycles simulates a fixed number of cycles.
func (s *System) RunCycles(n uint64) Results {
	start := s.kernel.Now()
	s.kernel.RunUntil(func() bool { return s.stop }, n)
	return s.results(start)
}

// Finished reports whether every thread's program ended and every
// pipeline and write buffer drained. The statistical workload generators
// never finish; explicit finite programs (workload.Custom, dvmc-fuzz) do.
func (s *System) Finished() bool {
	for _, c := range s.cpus {
		if !c.Finished() {
			return false
		}
	}
	return true
}

// RunToCompletion simulates until every program finishes and drains, a
// violation stops the run (with StopOnViolation), or the cycle budget
// expires. It reports whether the programs completed within the budget.
// Only meaningful for finite programs (workload.Custom specs).
func (s *System) RunToCompletion(maxCycles uint64) (Results, bool) {
	start := s.kernel.Now()
	s.kernel.RunUntil(func() bool { return s.stop || s.Finished() }, maxCycles)
	return s.results(start), s.Finished()
}

// DrainCheckers forces the MET priority queues to process every queued
// inform (end-of-run flush so late violations are not lost).
func (s *System) DrainCheckers() {
	for _, m := range s.met {
		if m != nil {
			m.Drain()
		}
	}
}

// Violations returns all detected violations so far.
func (s *System) Violations() []Violation { return s.violations.Violations }

// Tracing reports whether this system captures an execution trace.
func (s *System) Tracing() bool { return s.rec != nil }

// TraceBytes finalises the execution trace and returns its binary
// encoding (feed it to internal/oracle or write it for dvmc-trace).
// Returns an error if tracing was not enabled. Idempotent; call after the
// run completes — events emitted afterwards are discarded.
func (s *System) TraceBytes() ([]byte, error) {
	if s.rec == nil {
		return nil, fmt.Errorf("dvmc: tracing not enabled (set Config.Trace)")
	}
	return s.rec.Finish()
}

// TraceStats returns recorder accounting (zero value if tracing is off).
func (s *System) TraceStats() trace.RecorderStats {
	if s.rec == nil {
		return trace.RecorderStats{}
	}
	return s.rec.Stats()
}

// checkpointState is the architectural state captured per checkpoint.
type checkpointState struct {
	memories []map[mem.BlockAddr]mem.Block
	cpus     []proc.ArchState
}

// capture builds a checkpoint: per-home memory images with dirty cache
// lines overlaid and write-buffer stores applied, plus each core's
// architectural program position.
func (s *System) capture(now sim.Cycle) any {
	st := &checkpointState{}
	for _, h := range s.homes() {
		st.memories = append(st.memories, h.snapshot())
	}
	// Overlay dirty blocks (the owner's copy is newer than memory).
	for _, c := range s.ctrls {
		c.ForEachDirty(func(b mem.BlockAddr, data mem.Block) {
			st.memories[int(s.cfg.Memory.HomeOf(b))][b] = data
		})
	}
	// Apply committed-but-unperformed stores, then record positions.
	for _, c := range s.cpus {
		as := c.ArchSnapshot()
		for _, p := range as.Pending {
			home := int(s.cfg.Memory.HomeOf(p.Addr.Block()))
			blk := st.memories[home][p.Addr.Block()]
			blk[p.Addr.WordIndex()] = p.Val
			st.memories[home][p.Addr.Block()] = blk
		}
		st.cpus = append(st.cpus, as)
	}
	return st
}

// restore reinstalls a checkpoint: caches and networks flush, memories
// and program positions rewind, checkers reset.
func (s *System) restore(state any) {
	st := state.(*checkpointState)
	if s.tracer != nil {
		// Mark the rollback in the trace: committed-but-unperformed
		// operations before this point were discarded, and previously
		// exposed values may legally reappear. The offline oracle clears
		// its pending state at this marker, mirroring the online
		// checkers' Reset below.
		s.tracer.Emit(trace.Event{Kind: trace.EvRecover, Time: s.kernel.Now()})
	}
	if s.spanRec != nil {
		// In-flight transactions are squashed with the networks below;
		// their spans close as aborted.
		s.spanRec.AbortOpen(s.kernel.Now())
	}
	s.torus.Reset()
	if s.bcast != nil {
		s.bcast.Reset()
	}
	for i, h := range s.homes() {
		h.restore(st.memories[i])
	}
	for _, c := range s.ctrls {
		c.Reset()
	}
	for i, c := range s.cpus {
		c.Recover(st.cpus[i])
	}
	for _, u := range s.uo {
		if u != nil {
			u.Reset()
		}
	}
	for _, r := range s.reorder {
		if r != nil {
			r.Reset()
		}
	}
	for _, c := range s.cet {
		c.Reset()
	}
	for _, m := range s.met {
		m.Reset()
	}
}

// homeView unifies the two home-controller types for checkpointing.
type homeView struct {
	snapshot func() map[mem.BlockAddr]mem.Block
	restore  func(map[mem.BlockAddr]mem.Block)
}

func (s *System) homes() []homeView {
	var out []homeView
	for _, h := range s.dirH {
		h := h
		out = append(out, homeView{
			snapshot: h.Memory().Snapshot,
			restore: func(m map[mem.BlockAddr]mem.Block) {
				h.Memory().Restore(m)
				h.Reset()
			},
		})
	}
	for _, h := range s.snpH {
		h := h
		out = append(out, homeView{
			snapshot: h.Memory().Snapshot,
			restore: func(m map[mem.BlockAddr]mem.Block) {
				h.Memory().Restore(m)
				h.Reset()
			},
		})
	}
	return out
}

// Recover rolls back to the newest checkpoint preceding errorCycle,
// reporting whether a live checkpoint existed (SafetyNet must be
// enabled).
func (s *System) Recover(errorCycle sim.Cycle) bool {
	if s.snMgr == nil {
		return false
	}
	_, ok := s.snMgr.Recover(errorCycle)
	if ok {
		s.stop = false
	}
	return ok
}

// RecoveryWindow returns the BER window in cycles (0 without SafetyNet).
func (s *System) RecoveryWindow() sim.Cycle {
	if s.snMgr == nil {
		return 0
	}
	return s.cfg.SNConfig.Window()
}
