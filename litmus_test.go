package dvmc

import (
	"testing"
	"testing/quick"
)

func TestLitmusStoreBuffering(t *testing.T) {
	// The canonical TSO relaxation: a younger load performs before an
	// older store. Legal on TSO/PSO/RMO, illegal on SC.
	events := []PerformEvent{
		{Seq: 2, Class: LoadOp},
		{Seq: 1, Class: StoreOp},
	}
	if len(VerifyPerformOrder(SC, events)) == 0 {
		t.Error("SC permitted store buffering")
	}
	for _, m := range []Model{TSO, PSO, RMO} {
		if v := VerifyPerformOrder(m, events); len(v) != 0 {
			t.Errorf("%v flagged store buffering: %v", m, v[0])
		}
	}
}

func TestLitmusInOrderAlwaysLegal(t *testing.T) {
	// Property: any in-order perform stream is legal under every model.
	f := func(kinds []uint8) bool {
		var events []PerformEvent
		for i, k := range kinds {
			cl := LoadOp
			if k%2 == 0 {
				cl = StoreOp
			}
			events = append(events, PerformEvent{Seq: uint64(i + 1), Class: cl})
		}
		for _, m := range Models {
			if len(VerifyPerformOrder(m, events)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLitmusRMOPermitsAnyPlainOrder(t *testing.T) {
	// Property: RMO without membars permits every permutation of plain
	// loads and stores.
	f := func(seqsRaw []uint8) bool {
		seen := map[uint64]bool{}
		var events []PerformEvent
		for i, s := range seqsRaw {
			seq := uint64(s) + 1
			if seen[seq] {
				continue
			}
			seen[seq] = true
			cl := LoadOp
			if i%2 == 0 {
				cl = StoreOp
			}
			events = append(events, PerformEvent{Seq: seq, Class: cl})
		}
		return len(VerifyPerformOrder(RMO, events)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLitmusSCRejectsAnyInversion(t *testing.T) {
	// Property: under SC, any adjacent inversion of plain ops is flagged.
	f := func(a, b uint8, aLoad, bLoad bool) bool {
		sa, sb := uint64(a)+1, uint64(b)+1
		if sa == sb {
			return true
		}
		if sa < sb {
			sa, sb = sb, sa
		}
		cl := func(isLoad bool) OpClass {
			if isLoad {
				return LoadOp
			}
			return StoreOp
		}
		// Perform the younger (sa) before the older (sb).
		events := []PerformEvent{
			{Seq: sa, Class: cl(aLoad)},
			{Seq: sb, Class: cl(bLoad)},
		}
		return len(VerifyPerformOrder(SC, events)) != 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLitmusMembarMasksSelective(t *testing.T) {
	// An #SS membar under RMO orders stores but not loads.
	storesAcross := []PerformEvent{
		{Seq: 1, Class: StoreOp},
		{Seq: 3, Class: StoreOp}, // younger store overtakes the membar
		{Seq: 2, Class: MembarOp, Mask: MaskSS},
	}
	if len(VerifyPerformOrder(RMO, storesAcross)) == 0 {
		t.Error("#SS membar did not order stores")
	}
	loadsAcross := []PerformEvent{
		{Seq: 1, Class: LoadOp},
		{Seq: 3, Class: LoadOp},
		{Seq: 2, Class: MembarOp, Mask: MaskSS},
	}
	// Wait: the membar performing after a younger LOAD is fine for #SS.
	if v := VerifyPerformOrder(RMO, loadsAcross); len(v) != 0 {
		t.Errorf("#SS membar ordered loads: %v", v[0])
	}
}

func TestLitmusBits32ForcesTSO(t *testing.T) {
	events := []PerformEvent{
		{Seq: 2, Class: LoadOp, Bits32: true},
		{Seq: 1, Class: LoadOp, Bits32: true},
	}
	if len(VerifyPerformOrder(RMO, events)) == 0 {
		t.Error("32-bit loads reordered freely on RMO (Table 8 rule broken)")
	}
	plain := []PerformEvent{
		{Seq: 2, Class: LoadOp},
		{Seq: 1, Class: LoadOp},
	}
	if len(VerifyPerformOrder(RMO, plain)) != 0 {
		t.Error("64-bit RMO loads wrongly ordered")
	}
}

func TestOrderingRequiredMatchesTables(t *testing.T) {
	// Spot-check the public table view against Tables 2-4.
	tests := []struct {
		m             Model
		first, second OpClass
		want          bool
	}{
		{TSO, StoreOp, LoadOp, false},
		{TSO, StoreOp, StoreOp, true},
		{PSO, StoreOp, StoreOp, false},
		{PSO, LoadOp, StoreOp, true},
		{RMO, LoadOp, LoadOp, false},
		{SC, StoreOp, LoadOp, true},
	}
	for _, tt := range tests {
		if got := OrderingRequired(tt.m, tt.first, tt.second, 0, 0); got != tt.want {
			t.Errorf("OrderingRequired(%v, %v, %v) = %v, want %v", tt.m, tt.first, tt.second, got, tt.want)
		}
	}
	if !OrderingRequired(PSO, StoreOp, MembarOp, 0, MaskSS) {
		t.Error("PSO Store->Stbar not required")
	}
}

func TestLitmusRMWBothHalves(t *testing.T) {
	// Under TSO an RMW behaves as load and store: its perform after a
	// younger load breaks Load→Load (via the load half).
	events := []PerformEvent{
		{Seq: 2, Class: LoadOp},
		{Seq: 1, Class: StoreOp, IsRMW: true},
	}
	if len(VerifyPerformOrder(TSO, events)) == 0 {
		t.Error("RMW load half not checked under TSO")
	}
	if len(VerifyPerformOrder(RMO, events)) != 0 {
		t.Error("RMO flagged an RMW reorder with no membars")
	}
}
