package dvmc

import (
	"reflect"
	"testing"

	"dvmc/internal/core"
	"dvmc/internal/sim"
)

// injCfg is the injection-test configuration: scaled geometry, strict
// panics off, short membar-injection interval to bound latencies.
func injCfg() Config {
	cfg := smallConfig()
	cfg.Proc.MembarInjectionInterval = 5000
	cfg.Memory.CacheECC = true // cache flips are ECC's job (Section 4.3)
	// Match the paper's ~100k-cycle recovery window.
	cfg.SNConfig.Interval = 10000
	cfg.SNConfig.Keep = 10
	return cfg
}

func runOne(t *testing.T, cfg Config, kind FaultKind, node int) InjectionResult {
	t.Helper()
	// Stagger injection time with the node so repeated attempts target
	// different dynamic states.
	cycle := Cycle(5000 + 2500*node)
	res, err := RunInjection(cfg, OLTP(), Injection{Kind: kind, Node: node, Cycle: cycle}, 400_000)
	if err != nil {
		t.Fatalf("%v: %v", kind, err)
	}
	return res
}

// TestInjectionDetection checks each fault class individually: every
// applied, architecture-affecting fault must be detected (paper Section
// 6.1: "DVMC detected all injected errors well within the SafetyNet
// recovery time frame").
func TestInjectionDetection(t *testing.T) {
	kinds := []FaultKind{
		FaultWBReorder, FaultWBDrop, FaultWBCorrupt,
		FaultLSQValue, FaultLSQForward,
		FaultCacheDataFlip, FaultMemoryDataFlip,
		FaultSilentWrite, FaultPermissionDrop,
		FaultMsgDataFlip, FaultMsgDrop,
	}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			detectedSomewhere := false
			applied := 0
			for node := 0; node < 4 && !detectedSomewhere; node++ {
				res := runOne(t, injCfg(), kind, node)
				if !res.Applied {
					continue
				}
				applied++
				if res.Detected {
					detectedSomewhere = true
					if res.Latency > sim.Cycle(100_000) {
						t.Errorf("detection latency %d exceeds the recovery window", res.Latency)
					}
					if !res.Recoverable {
						t.Errorf("detected but not recoverable: %v", res)
					}
				} else {
					t.Logf("node %d: %v", node, res)
				}
			}
			if applied == 0 {
				t.Skip("fault had no target in this run")
			}
			if !detectedSomewhere {
				t.Fatalf("%v: applied %d times, never detected", kind, applied)
			}
		})
	}
}

// TestInjectionDetectionSnooping repeats the headline classes on the
// snooping system: each class must be detected on at least one node.
func TestInjectionDetectionSnooping(t *testing.T) {
	cfg := injCfg().WithProtocol(Snooping)
	for _, kind := range []FaultKind{FaultWBCorrupt, FaultCacheDataFlip, FaultSilentWrite, FaultLSQValue} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			applied := 0
			for node := 0; node < 4; node++ {
				res := runOne(t, cfg, kind, node)
				if !res.Applied {
					continue
				}
				applied++
				if res.Detected {
					return
				}
				t.Logf("node %d: %v", node, res)
			}
			if applied == 0 {
				t.Skip("no target")
			}
			t.Fatalf("%v never detected on the snooping system", kind)
		})
	}
}

// TestInjectionAcrossModels runs one representative fault per model. A
// cache flip on a line that is never touched again within the budget is
// masked (ECC corrects it on first use); require detection on at least
// one node per model.
func TestInjectionAcrossModels(t *testing.T) {
	for _, model := range Models {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			cfg := injCfg().WithModel(model)
			for node := 0; node < 4; node++ {
				res := runOne(t, cfg, FaultCacheDataFlip, node)
				if res.Applied && res.Detected {
					return
				}
				t.Logf("node %d: %v", node, res)
			}
			t.Fatalf("cache flip never detected under %v", model)
		})
	}
}

// TestCampaign runs a randomized multi-fault campaign and checks the
// aggregate: every detected fault within the window, none detected but
// unrecoverable, and a high detection rate among applied faults.
func TestCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	cfg := injCfg()
	camp, err := RunCampaign(cfg, Slashcode(), 30, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	applied, detected, masked, undetected := camp.Counts()
	t.Logf("campaign: applied=%d detected=%d masked=%d undetected=%d maxLatency=%d",
		applied, detected, masked, undetected, camp.MaxLatency())
	if applied == 0 {
		t.Fatal("no faults applied")
	}
	if undetected != 0 {
		for _, r := range camp.Results {
			if r.Applied && !r.Detected && !r.Masked {
				t.Errorf("false negative: %v", r)
			}
		}
	}
	if !camp.AllRecoverable() {
		for _, r := range camp.Results {
			if r.Detected && !r.Recoverable {
				t.Errorf("outside recovery window: %v", r)
			}
		}
	}
}

func TestFaultKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range AllFaultKinds() {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("fault kind %d bad string %q", k, s)
		}
		seen[s] = true
	}
}

func TestInjectionResultString(t *testing.T) {
	r := InjectionResult{Injection: Injection{Kind: FaultWBDrop, Node: 1, Cycle: 5}}
	if r.String() == "" {
		t.Error("empty string")
	}
	r.Applied = true
	if r.String() == "" {
		t.Error("empty string")
	}
	r.Detected = true
	if r.String() == "" {
		t.Error("empty string")
	}
}

// TestCampaignResultCounts checks the aggregation arithmetic over a
// hand-built result set: not-applied results are excluded entirely, and
// applied results partition into detected / masked / undetected.
func TestCampaignResultCounts(t *testing.T) {
	c := CampaignResult{Results: []InjectionResult{
		{},                              // not applied
		{Applied: true, Detected: true}, // detected
		{Applied: true, Detected: true}, // detected
		{Applied: true, Masked: true},   // masked
		{Applied: true},                 // undetected escape
		{Applied: true, Detected: true, Masked: true}, // detection wins over masking
	}}
	applied, detected, masked, undetected := c.Counts()
	if applied != 5 || detected != 3 || masked != 1 || undetected != 1 {
		t.Fatalf("Counts() = %d/%d/%d/%d, want 5/3/1/1", applied, detected, masked, undetected)
	}
}

func TestCampaignResultCountsEmpty(t *testing.T) {
	var c CampaignResult
	applied, detected, masked, undetected := c.Counts()
	if applied+detected+masked+undetected != 0 {
		t.Fatalf("empty campaign counted %d/%d/%d/%d", applied, detected, masked, undetected)
	}
	if got := c.MaxLatency(); got != 0 {
		t.Fatalf("empty campaign MaxLatency = %d", got)
	}
	if !c.AllRecoverable() {
		t.Fatal("empty campaign must be vacuously recoverable")
	}
}

// TestCampaignResultMaxLatency: only detected faults contribute; the
// worst one wins.
func TestCampaignResultMaxLatency(t *testing.T) {
	c := CampaignResult{Results: []InjectionResult{
		{Applied: true, Detected: true, Latency: 40},
		{Applied: true, Detected: true, Latency: 900},
		{Applied: true, Latency: 5000}, // undetected: latency is meaningless
		{Applied: true, Detected: true, Latency: 7},
	}}
	if got := c.MaxLatency(); got != sim.Cycle(900) {
		t.Fatalf("MaxLatency = %d, want 900", got)
	}
}

// TestCampaignResultAllRecoverable: one unrecoverable detection poisons
// the campaign; undetected results do not count against it.
func TestCampaignResultAllRecoverable(t *testing.T) {
	ok := CampaignResult{Results: []InjectionResult{
		{Applied: true, Detected: true, Recoverable: true},
		{Applied: true}, // undetected: recoverability not applicable
	}}
	if !ok.AllRecoverable() {
		t.Fatal("campaign with only recoverable detections reported unrecoverable")
	}
	bad := CampaignResult{Results: []InjectionResult{
		{Applied: true, Detected: true, Recoverable: true},
		{Applied: true, Detected: true, Recoverable: false},
	}}
	if bad.AllRecoverable() {
		t.Fatal("campaign with an unrecoverable detection reported recoverable")
	}
}

// TestInjectionLSQValueFlipRMO pins the RMO-specific regression: an LSQ
// data-path flip on a load that performs at execute must be caught by
// the replay comparison itself. The VC's load-value fill is wired to
// the cache port, so the corrupted register value mismatches the VC
// copy at replay. Before the fix the VC cached the corrupted value and
// replay verified the corruption against itself — such faults were only
// "detected" tens of thousands of cycles later by an unrelated
// false-alarm store mismatch, and became silent escapes once that
// false alarm was fixed.
func TestInjectionLSQValueFlipRMO(t *testing.T) {
	cfg := injCfg().WithModel(RMO)
	applied, detected := 0, 0
	for node := 0; node < 4; node++ {
		res := runOne(t, cfg, FaultLSQValue, node)
		if !res.Applied {
			continue
		}
		applied++
		switch {
		case res.Detected:
			detected++
			if res.DetectionKind != core.UOMismatch {
				t.Errorf("node %d: detected as %v, want the replay's load mismatch", node, res.DetectionKind)
			}
			if res.Latency > 10_000 {
				t.Errorf("node %d: latency %d; replay should catch the flip near commit", node, res.Latency)
			}
		case res.Masked:
			// A mis-speculation flush erased the corruption: legitimate.
		default:
			t.Errorf("node %d: escape: %v", node, res)
		}
	}
	if applied == 0 {
		t.Skip("fault had no target in this run")
	}
	if detected == 0 {
		t.Fatalf("lsq-value-flip under RMO never detected (%d applied)", applied)
	}
}

// mergeFixture builds a fully-occupied campaign table and three
// slot-disjoint partials that partition it, mimicking three fabric
// shards of one campaign.
func mergeFixture() (full CampaignResult, parts []CampaignResult) {
	kinds := AllFaultKinds()
	full = CampaignResult{Results: make([]InjectionResult, 7)}
	for i := range full.Results {
		full.Results[i] = InjectionResult{
			Injection: Injection{Kind: kinds[i%len(kinds)], Node: i % 4, Cycle: Cycle(1000 * (i + 1))},
			Applied:   i%3 != 0,
			Detected:  i%3 == 1,
			Latency:   Cycle(10 * i),
		}
	}
	ranges := [][2]int{{0, 3}, {3, 5}, {5, 7}}
	for _, r := range ranges {
		p := CampaignResult{Results: make([]InjectionResult, len(full.Results))}
		copy(p.Results[r[0]:r[1]], full.Results[r[0]:r[1]])
		parts = append(parts, p)
	}
	return full, parts
}

// TestMergeOrderIndependent proves the fabric's merging contract:
// slot-disjoint partial results combine to the same table under every
// argument order and association.
func TestMergeOrderIndependent(t *testing.T) {
	full, parts := mergeFixture()
	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}, {2, 0, 1}}
	for _, ord := range orders {
		acc := CampaignResult{}
		for _, pi := range ord {
			var err error
			acc, err = Merge(acc, parts[pi])
			if err != nil {
				t.Fatalf("order %v: %v", ord, err)
			}
		}
		if !reflect.DeepEqual(acc, full) {
			t.Fatalf("order %v: merged table differs from the serial table", ord)
		}
	}
	// Right-associated for good measure: Merge(p0, Merge(p1, p2)).
	inner, err := Merge(parts[1], parts[2])
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Merge(parts[0], inner)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(acc, full) {
		t.Fatal("right-associated merge differs from the serial table")
	}
}

// TestMergeRejectsOverlap: the same slot occupied on both sides is a
// protocol violation (two workers claiming one shard), not silently
// resolvable.
func TestMergeRejectsOverlap(t *testing.T) {
	full, parts := mergeFixture()
	if _, err := Merge(parts[0], parts[0]); err == nil {
		t.Fatal("merging a partial with itself must fail")
	}
	if _, err := Merge(full, parts[1]); err == nil {
		t.Fatal("merging overlapping results must fail")
	}
}

// TestMergeUnevenLengths: a shorter partial (old checkpoint, smaller
// shard plan) pads with holes rather than erroring.
func TestMergeUnevenLengths(t *testing.T) {
	full, parts := mergeFixture()
	short := CampaignResult{Results: append([]InjectionResult(nil), parts[0].Results[:3]...)}
	acc, err := Merge(short, parts[1])
	if err != nil {
		t.Fatal(err)
	}
	acc, err = Merge(parts[2], acc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(acc, full) {
		t.Fatal("merge with a truncated partial differs from the serial table")
	}
}

// TestCampaignSliceMatchesSerial runs one small campaign whole and as
// two merged slices, and requires identical results — the simulation-
// level half of the fabric's byte-identity claim.
func TestCampaignSliceMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	cfg := injCfg()
	const n = 6
	serial, err := RunCampaign(cfg, OLTP(), n, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	injs := DeriveCampaignInjections(cfg, n)
	lo, err := RunCampaignSlice(cfg, OLTP(), injs, 200_000, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := RunCampaignSlice(cfg, OLTP(), injs, 200_000, 4, n)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(hi, lo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, serial) {
		t.Fatalf("sliced campaign differs from serial:\n merged %+v\n serial %+v", merged, serial)
	}
}
