// Command dvmc-errors runs the Section 6.1 fault-injection campaign:
// random errors (bit flips; dropped, reordered, mis-routed, duplicated
// messages; LSQ and write-buffer faults; controller-logic faults) are
// injected into running systems and DVMC's detection is measured.
//
// Example:
//
//	dvmc-errors -n 40 -workload slash -model TSO -protocol directory
//
// Exit codes: 0 every applied fault was detected or masked, 1 usage or
// setup error, 2 undetected faults or unrecoverable detections.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"dvmc"
)

func main() {
	fs := flag.NewFlagSet("dvmc-errors", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		n            = fs.Int("n", 20, "number of faults to inject")
		workloadName = fs.String("workload", "oltp", "workload under test")
		modelName    = fs.String("model", "TSO", "consistency model: SC|TSO|PSO|RMO")
		protoName    = fs.String("protocol", "directory", "coherence protocol")
		budget       = fs.Uint64("budget", 400_000, "post-injection observation cycles")
		seed         = fs.Uint64("seed", 1, "campaign seed")
		each         = fs.Bool("each", false, "print every injection result")
	)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dvmc-errors [flags]\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(os.Stderr, `
exit codes: 0 every applied fault detected or masked, 1 usage or setup
error, 2 undetected faults or unrecoverable detections.
`)
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0) // help was requested and printed
		}
		os.Exit(1) // usage error (ContinueOnError already printed it)
	}

	cfg := dvmc.ScaledConfig().WithSeed(*seed)
	cfg.Memory.CacheECC = true
	cfg.SNConfig.Interval = 10000
	cfg.SNConfig.Keep = 10
	cfg.Proc.MembarInjectionInterval = 5000
	switch strings.ToUpper(*modelName) {
	case "SC":
		cfg = cfg.WithModel(dvmc.SC)
	case "TSO":
		cfg = cfg.WithModel(dvmc.TSO)
	case "PSO":
		cfg = cfg.WithModel(dvmc.PSO)
	case "RMO":
		cfg = cfg.WithModel(dvmc.RMO)
	default:
		fatalf("unknown model %q", *modelName)
	}
	if strings.ToLower(*protoName) == "snooping" {
		cfg = cfg.WithProtocol(dvmc.Snooping)
	}

	w, err := dvmc.WorkloadByName(*workloadName)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("dvmc-errors: %d faults into %s on %v/%v (recovery window %d cycles)\n",
		*n, w.Name, cfg.Protocol, cfg.Model, cfg.SNConfig.Window())

	camp, err := dvmc.RunCampaign(cfg, w, *n, *budget)
	if err != nil {
		fatalf("campaign: %v", err)
	}
	if *each {
		for _, r := range camp.Results {
			fmt.Printf("  %v\n", r)
		}
	}
	applied, detected, masked, undetected := camp.Counts()
	fmt.Printf("\napplied:    %d\ndetected:   %d\nmasked:     %d (no architectural effect)\nundetected: %d (false negatives)\n",
		applied, detected, masked, undetected)
	fmt.Printf("max detection latency: %d cycles\nall recoverable: %v\n",
		camp.MaxLatency(), camp.AllRecoverable())
	if undetected > 0 || !camp.AllRecoverable() {
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dvmc-errors: "+format+"\n", args...)
	os.Exit(1)
}
