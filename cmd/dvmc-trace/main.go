// Command dvmc-trace records and re-verifies execution traces.
//
// The simulator's online DVMC checkers run inside the machine they
// verify. dvmc-trace closes the loop from the outside: `record` runs a
// full-system simulation with the trace recorder attached and writes the
// captured per-processor commit/perform stream to disk; `check` replays
// a trace through the offline consistency oracle (internal/oracle),
// which re-derives the uniprocessor-ordering and allowable-reordering
// verdicts from nothing but the trace and the consistency model's
// ordering table; `info` summarises a trace without checking it.
//
// Examples:
//
//	dvmc-trace record -workload oltp -model TSO -txns 200 trace.trc
//	dvmc-trace check trace.trc
//	dvmc-trace record -model RMO - | dvmc-trace check -
//
// Exit codes: 0 clean, 1 usage or I/O error, 2 the oracle found
// violations — so the pair composes into shell pipelines and CI jobs.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dvmc"
	"dvmc/internal/oracle"
	"dvmc/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "check":
		check(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "-h", "-help", "--help", "help":
		printUsage()
		os.Exit(0)
	default:
		fatalf("unknown subcommand %q (want record, check, or info)", os.Args[1])
	}
}

func usage() {
	printUsage()
	os.Exit(1)
}

func printUsage() {
	fmt.Fprintf(os.Stderr, `usage:
  dvmc-trace record [flags] <out.trc | ->   run a simulation, write its trace
  dvmc-trace check  <in.trc | ->            verify a trace with the offline oracle
  dvmc-trace info   <in.trc | ->            summarise a trace

'-' reads from stdin / writes to stdout. 'record -h' lists its flags.

exit codes: 0 clean, 1 usage or I/O error, 2 the oracle found
violations.
`)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		workloadName = fs.String("workload", "oltp", "workload: apache|oltp|jbb|slash|barnes|uniform")
		modelName    = fs.String("model", "TSO", "consistency model: SC|TSO|PSO|RMO")
		protoName    = fs.String("protocol", "directory", "coherence protocol: directory|snooping")
		nodes        = fs.Int("nodes", 4, "processor count")
		txns         = fs.Uint64("txns", 200, "transactions to complete")
		maxCycles    = fs.Uint64("max-cycles", 100_000_000, "cycle budget")
		seed         = fs.Uint64("seed", 1, "simulation seed")
		flight       = fs.Int("flight", 0, "flight-recorder mode: keep only the last N events (0 = full capture)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		os.Exit(1)
	}
	if fs.NArg() != 1 {
		fatalf("record: need exactly one output path (or '-' for stdout)")
	}
	out := fs.Arg(0)

	cfg := dvmc.ScaledConfig().WithNodes(*nodes).WithSeed(*seed)
	model, ok := parseModel(*modelName)
	if !ok {
		fatalf("unknown model %q", *modelName)
	}
	cfg = cfg.WithModel(model)
	switch strings.ToLower(*protoName) {
	case "directory":
		cfg = cfg.WithProtocol(dvmc.Directory)
	case "snooping":
		cfg = cfg.WithProtocol(dvmc.Snooping)
	default:
		fatalf("unknown protocol %q", *protoName)
	}
	tc := dvmc.TraceOn()
	if *flight > 0 {
		tc.FlightRecorder = true
		tc.RingEvents = *flight
	}
	cfg = cfg.WithTrace(tc)

	w, err := dvmc.WorkloadByName(*workloadName)
	if err != nil {
		fatalf("%v", err)
	}
	sys, err := dvmc.NewSystem(cfg, w)
	if err != nil {
		fatalf("assemble: %v", err)
	}
	res, err := sys.Run(*txns, *maxCycles)
	if err != nil {
		fatalf("run: %v", err)
	}
	sys.DrainCheckers()

	data, err := sys.TraceBytes()
	if err != nil {
		fatalf("trace: %v", err)
	}
	if out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			fatalf("write stdout: %v", err)
		}
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		fatalf("write %s: %v", out, err)
	}
	ts := sys.TraceStats()
	fmt.Fprintf(os.Stderr,
		"dvmc-trace: %s %v/%v ran %d txns in %d cycles; %d events (%d dropped), %d bytes\n",
		w.Name, cfg.Protocol, cfg.Model, res.Transactions, res.Cycles,
		ts.Events, ts.Dropped, len(data))
	if onv := sys.Violations(); len(onv) > 0 {
		fmt.Fprintf(os.Stderr, "dvmc-trace: online checkers reported %d violations during recording:\n", len(onv))
		for _, v := range onv {
			fmt.Fprintf(os.Stderr, "  %v\n", v)
		}
	}
}

func check(args []string) {
	data := readTrace(args, "check")
	rep, err := oracle.CheckBytes(data)
	if err != nil {
		fatalf("check: %v", err)
	}
	st := rep.Stats
	fmt.Printf("trace:  v%d, %d nodes, %v, %s protocol, seed %d\n",
		rep.Meta.Version, rep.Meta.Nodes, rep.Meta.Model, protoName(rep.Meta.Protocol), rep.Meta.Seed)
	fmt.Printf("events: %d (%d loads, %d stores, %d rmws, %d membars, %d recoveries)\n",
		st.Events, st.Loads, st.Stores, st.RMWs, st.Membars, st.Recoveries)
	fmt.Printf("oracle: %d ordering pair checks, %d value checks (%d forwarded loads exempt), max window %d\n",
		st.PairChecks, st.ValueChecks, st.SkippedForwarded, st.MaxWindow)
	if st.UnperformedAtEnd > 0 {
		fmt.Printf("note:   %d operations committed but unperformed when the trace ends\n", st.UnperformedAtEnd)
	}
	if rep.Clean() {
		fmt.Println("verdict: clean — the trace satisfies the recorded consistency model")
		return
	}
	fmt.Printf("verdict: %d violations\n", len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Printf("  %v\n", v)
	}
	os.Exit(2)
}

func info(args []string) {
	data := readTrace(args, "info")
	meta, events, err := trace.Decode(data)
	if err != nil {
		fatalf("info: %v", err)
	}
	var commits, performs, recovers uint64
	byNode := map[uint8]uint64{}
	for _, ev := range events {
		switch ev.Kind {
		case trace.EvCommit:
			commits++
		case trace.EvPerform:
			performs++
		case trace.EvRecover:
			recovers++
		}
		byNode[ev.Node]++
	}
	fmt.Printf("trace:  v%d, %d nodes, %v, %s protocol, seed %d\n",
		meta.Version, meta.Nodes, meta.Model, protoName(meta.Protocol), meta.Seed)
	if meta.Truncated {
		fmt.Println("note:   truncated flight-recorder window (oracle will refuse it)")
	}
	fmt.Printf("size:   %d bytes, %d events (%.2f bytes/event)\n",
		len(data), len(events), float64(len(data))/float64(max(1, len(events))))
	fmt.Printf("events: %d commits, %d performs, %d recovery markers\n", commits, performs, recovers)
	if len(events) > 0 {
		fmt.Printf("span:   cycles %d..%d\n", events[0].Time, events[len(events)-1].Time)
	}
	for n := uint8(0); int(n) < int(meta.Nodes); n++ {
		fmt.Printf("  node %d: %d events\n", n, byNode[n])
	}
}

// readTrace resolves the single path argument of check/info.
func readTrace(args []string, sub string) []byte {
	if len(args) != 1 {
		fatalf("%s: need exactly one trace path (or '-' for stdin)", sub)
	}
	if args[0] == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatalf("read stdin: %v", err)
		}
		return data
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		fatalf("%v", err)
	}
	return data
}

func protoName(p uint8) string {
	if p == 1 {
		return "snooping"
	}
	return "directory"
}

func parseModel(s string) (dvmc.Model, bool) {
	switch strings.ToUpper(s) {
	case "SC":
		return dvmc.SC, true
	case "TSO":
		return dvmc.TSO, true
	case "PSO":
		return dvmc.PSO, true
	case "RMO":
		return dvmc.RMO, true
	default:
		return 0, false
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dvmc-trace: "+format+"\n", args...)
	os.Exit(1)
}
