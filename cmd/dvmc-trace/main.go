// Command dvmc-trace records and re-verifies execution traces.
//
// The simulator's online DVMC checkers run inside the machine they
// verify. dvmc-trace closes the loop from the outside: `record` runs a
// full-system simulation with the trace recorder attached and writes the
// captured per-processor commit/perform stream to disk; `check` replays
// a trace through the offline consistency oracle (internal/oracle),
// which re-derives the uniprocessor-ordering and allowable-reordering
// verdicts from nothing but the trace and the consistency model's
// ordering table; `info` summarises a trace without checking it.
//
// Examples:
//
//	dvmc-trace record -workload oltp -model TSO -txns 200 trace.trc
//	dvmc-trace check trace.trc
//	dvmc-trace record -model RMO - | dvmc-trace check -
//
// Exit codes: 0 clean, 1 usage or I/O error, 2 the oracle found
// violations — so the pair composes into shell pipelines and CI jobs.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dvmc"
	"dvmc/internal/oracle"
	"dvmc/internal/oracle/stream"
	"dvmc/internal/telemetry"
	"dvmc/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "check":
		check(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "-h", "-help", "--help", "help":
		printUsage()
		os.Exit(0)
	default:
		fatalf("unknown subcommand %q (want record, check, or info)", os.Args[1])
	}
}

func usage() {
	printUsage()
	os.Exit(1)
}

func printUsage() {
	fmt.Fprintf(os.Stderr, `usage:
  dvmc-trace record [flags] <out.trc | ->   run a simulation, write its trace
  dvmc-trace check [flags] <in.trc | ->     verify a trace with the offline oracle
  dvmc-trace info [-json] <in.trc | ->      summarise a trace

'-' reads from stdin / writes to stdout. 'record -h' / 'check -h' list
flags. 'check -stream' verifies incrementally with bounded memory (the
streaming parallel oracle; report identical to the batch engine), so it
can sit on the end of a pipe while 'record' is still running.

exit codes: 0 clean, 1 usage or I/O error, 2 the oracle found
violations.
`)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		workloadName = fs.String("workload", "oltp", "workload: apache|oltp|jbb|slash|barnes|uniform")
		modelName    = fs.String("model", "TSO", "consistency model: SC|TSO|PSO|RMO")
		protoName    = fs.String("protocol", "directory", "coherence protocol: directory|snooping")
		nodes        = fs.Int("nodes", 4, "processor count")
		txns         = fs.Uint64("txns", 200, "transactions to complete")
		maxCycles    = fs.Uint64("max-cycles", 100_000_000, "cycle budget")
		seed         = fs.Uint64("seed", 1, "simulation seed")
		flight       = fs.Int("flight", 0, "flight-recorder mode: keep only the last N events (0 = full capture)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		os.Exit(1)
	}
	if fs.NArg() != 1 {
		fatalf("record: need exactly one output path (or '-' for stdout)")
	}
	out := fs.Arg(0)

	cfg := dvmc.ScaledConfig().WithNodes(*nodes).WithSeed(*seed)
	model, ok := parseModel(*modelName)
	if !ok {
		fatalf("unknown model %q", *modelName)
	}
	cfg = cfg.WithModel(model)
	switch strings.ToLower(*protoName) {
	case "directory":
		cfg = cfg.WithProtocol(dvmc.Directory)
	case "snooping":
		cfg = cfg.WithProtocol(dvmc.Snooping)
	default:
		fatalf("unknown protocol %q", *protoName)
	}
	tc := dvmc.TraceOn()
	if *flight > 0 {
		tc.FlightRecorder = true
		tc.RingEvents = *flight
	}
	cfg = cfg.WithTrace(tc)

	w, err := dvmc.WorkloadByName(*workloadName)
	if err != nil {
		fatalf("%v", err)
	}
	sys, err := dvmc.NewSystem(cfg, w)
	if err != nil {
		fatalf("assemble: %v", err)
	}
	res, err := sys.Run(*txns, *maxCycles)
	if err != nil {
		fatalf("run: %v", err)
	}
	sys.DrainCheckers()

	data, err := sys.TraceBytes()
	if err != nil {
		fatalf("trace: %v", err)
	}
	if out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			fatalf("write stdout: %v", err)
		}
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		fatalf("write %s: %v", out, err)
	}
	ts := sys.TraceStats()
	fmt.Fprintf(os.Stderr,
		"dvmc-trace: %s %v/%v ran %d txns in %d cycles; %d events (%d dropped), %d bytes\n",
		w.Name, cfg.Protocol, cfg.Model, res.Transactions, res.Cycles,
		ts.Events, ts.Dropped, len(data))
	if onv := sys.Violations(); len(onv) > 0 {
		fmt.Fprintf(os.Stderr, "dvmc-trace: online checkers reported %d violations during recording:\n", len(onv))
		for _, v := range onv {
			fmt.Fprintf(os.Stderr, "  %v\n", v)
		}
	}
}

// streamSummary is the stream-engine section of check's JSON output.
type streamSummary struct {
	Shards      int    `json:"shards"`
	Window      int    `json:"window"`
	MaxFrontier int64  `json:"max_frontier"`
	Events      uint64 `json:"events"`
}

// checkJSON is the machine-readable verdict of `check -json`.
type checkJSON struct {
	Meta       trace.Meta         `json:"meta"`
	Violations []oracle.Violation `json:"violations"`
	Stats      oracle.Stats       `json:"stats"`
	Stream     *streamSummary     `json:"stream,omitempty"`
}

func check(args []string) {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		streamOn   = fs.Bool("stream", false, "streaming engine: verify incrementally with bounded memory")
		shards     = fs.Int("shards", 0, "stream: address shards for the value check (0 = default)")
		window     = fs.Int("window", 0, "stream: events per pipeline window (0 = default)")
		jsonOut    = fs.Bool("json", false, "emit the verdict as JSON on stdout")
		metricsOut = fs.String("metrics-out", "", "stream: write a telemetry snapshot of checker progress to this file")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		os.Exit(1)
	}
	if (*shards != 0 || *window != 0 || *metricsOut != "") && !*streamOn {
		fatalf("check: -shards/-window/-metrics-out require -stream")
	}

	var (
		rep *oracle.Report
		sum *streamSummary
		err error
	)
	if *streamOn {
		rep, sum, err = checkStream(fs.Args(), *shards, *window, *metricsOut)
	} else {
		data := readTrace(fs.Args(), "check")
		rep, err = oracle.CheckBytes(data)
	}
	if err != nil {
		fatalf("check: %v", err)
	}

	if *jsonOut {
		out := checkJSON{Meta: rep.Meta, Violations: rep.Violations, Stats: rep.Stats, Stream: sum}
		if out.Violations == nil {
			out.Violations = []oracle.Violation{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatalf("check: encode: %v", err)
		}
		if !rep.Clean() {
			os.Exit(2)
		}
		return
	}

	st := rep.Stats
	fmt.Printf("trace:  v%d, %d nodes, %v, %s protocol, seed %d\n",
		rep.Meta.Version, rep.Meta.Nodes, rep.Meta.Model, protoName(rep.Meta.Protocol), rep.Meta.Seed)
	fmt.Printf("events: %d (%d loads, %d stores, %d rmws, %d membars, %d recoveries)\n",
		st.Events, st.Loads, st.Stores, st.RMWs, st.Membars, st.Recoveries)
	fmt.Printf("oracle: %d ordering pair checks, %d value checks (%d forwarded loads exempt), max window %d\n",
		st.PairChecks, st.ValueChecks, st.SkippedForwarded, st.MaxWindow)
	if st.UnperformedAtEnd > 0 {
		fmt.Printf("note:   %d operations committed but unperformed when the trace ends\n", st.UnperformedAtEnd)
	}
	if rep.Clean() {
		fmt.Println("verdict: clean — the trace satisfies the recorded consistency model")
		return
	}
	fmt.Printf("verdict: %d violations\n", len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Printf("  %v\n", v)
	}
	os.Exit(2)
}

// checkStream runs the streaming engine over a file or stdin without
// ever holding the trace: the decoder hands events straight to the
// pipelined checker. Progress gauges (events fed, events/sec, frontier
// depth and high-water, windows in flight, pending value queries) are
// exposed on a telemetry registry; -metrics-out snapshots it after the
// verdict for dvmc-stat.
func checkStream(args []string, shards, window int, metricsOut string) (*oracle.Report, *streamSummary, error) {
	if len(args) != 1 {
		fatalf("check: need exactly one trace path (or '-' for stdin)")
	}
	src := io.Reader(os.Stdin)
	if args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		src = f
	}
	r, err := trace.NewReader(src)
	if err != nil {
		return nil, nil, err
	}
	if r.Meta().Truncated {
		return nil, nil, oracle.ErrTruncatedTrace
	}
	opts := stream.Options{Shards: shards, Window: window, Pipeline: true}
	chk := stream.New(r.Meta(), opts)

	reg := telemetry.NewRegistry(telemetry.Config{})
	chk.RegisterMetrics(reg)
	start := time.Now()
	rate := reg.Gauge("stream_events_per_sec", "streaming-check throughput since start")
	reg.AddProbe(func() {
		if el := time.Since(start).Seconds(); el > 0 {
			rate.Set(0, int64(float64(chk.EventsFed())/el))
		}
	})

	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			chk.Abort()
			return nil, nil, err
		}
		chk.Feed(ev)
	}
	rep := chk.Finish()
	sum := &streamSummary{
		Shards:      orDefault(shards, stream.DefaultShards),
		Window:      orDefault(window, stream.DefaultWindow),
		MaxFrontier: chk.MaxFrontier(),
		Events:      chk.EventsFed(),
	}
	if metricsOut != "" {
		if err := telemetry.WriteSnapshotFile(reg.Snapshot(0), metricsOut); err != nil {
			return nil, nil, err
		}
	}
	return rep, sum, nil
}

func orDefault(v, d int) int {
	if v <= 0 {
		return d
	}
	return v
}

// infoJSON is the machine-readable summary of `info -json`.
type infoJSON struct {
	Meta     trace.Meta `json:"meta"`
	Bytes    int64      `json:"bytes"`
	Events   uint64     `json:"events"`
	Commits  uint64     `json:"commits"`
	Performs uint64     `json:"performs"`
	Recovers uint64     `json:"recovers"`
	SpanLo   uint64     `json:"span_lo"`
	SpanHi   uint64     `json:"span_hi"`
	PerNode  []uint64   `json:"per_node"`
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit the summary as JSON on stdout")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		os.Exit(1)
	}
	if fs.NArg() != 1 {
		fatalf("info: need exactly one trace path (or '-' for stdin)")
	}
	src := io.Reader(os.Stdin)
	if fs.Arg(0) != "-" {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		src = f
	}
	// Incremental decode: info summarises arbitrarily large traces (and
	// live pipes) without holding events or bytes.
	r, err := trace.NewReader(src)
	if err != nil {
		fatalf("info: %v", err)
	}
	meta := r.Meta()
	var sum infoJSON
	sum.Meta = meta
	byNode := map[uint8]uint64{}
	first := true
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatalf("info: %v", err)
		}
		switch ev.Kind {
		case trace.EvCommit:
			sum.Commits++
		case trace.EvPerform:
			sum.Performs++
		case trace.EvRecover:
			sum.Recovers++
		}
		byNode[ev.Node]++
		sum.Events++
		if first {
			sum.SpanLo = uint64(ev.Time)
			first = false
		}
		sum.SpanHi = uint64(ev.Time)
	}
	sum.Bytes = r.Offset()
	for n := 0; n < meta.Nodes; n++ {
		sum.PerNode = append(sum.PerNode, byNode[uint8(n)])
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fatalf("info: encode: %v", err)
		}
		return
	}
	fmt.Printf("trace:  v%d, %d nodes, %v, %s protocol, seed %d\n",
		meta.Version, meta.Nodes, meta.Model, protoName(meta.Protocol), meta.Seed)
	if meta.Truncated {
		fmt.Println("note:   truncated flight-recorder window (oracle will refuse it)")
	}
	fmt.Printf("size:   %d bytes, %d events (%.2f bytes/event)\n",
		sum.Bytes, sum.Events, float64(sum.Bytes)/float64(max(1, sum.Events)))
	fmt.Printf("events: %d commits, %d performs, %d recovery markers\n", sum.Commits, sum.Performs, sum.Recovers)
	if sum.Events > 0 {
		fmt.Printf("span:   cycles %d..%d\n", sum.SpanLo, sum.SpanHi)
	}
	for n := uint8(0); int(n) < int(meta.Nodes); n++ {
		fmt.Printf("  node %d: %d events\n", n, byNode[n])
	}
}

// readTrace resolves the single path argument of check/info.
func readTrace(args []string, sub string) []byte {
	if len(args) != 1 {
		fatalf("%s: need exactly one trace path (or '-' for stdin)", sub)
	}
	if args[0] == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatalf("read stdin: %v", err)
		}
		return data
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		fatalf("%v", err)
	}
	return data
}

func protoName(p uint8) string {
	if p == 1 {
		return "snooping"
	}
	return "directory"
}

func parseModel(s string) (dvmc.Model, bool) {
	switch strings.ToUpper(s) {
	case "SC":
		return dvmc.SC, true
	case "TSO":
		return dvmc.TSO, true
	case "PSO":
		return dvmc.PSO, true
	case "RMO":
		return dvmc.RMO, true
	default:
		return 0, false
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dvmc-trace: "+format+"\n", args...)
	os.Exit(1)
}
