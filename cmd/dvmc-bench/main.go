// Command dvmc-bench regenerates the paper's evaluation: every figure of
// Section 6 (runtimes per model and protocol, the DVMC component
// breakdown, replay misses, link bandwidth, and the two sensitivity
// sweeps) plus the Section 6.1 error-detection campaign.
//
// The figure matrices fan out over a bounded worker pool (-workers;
// default: host CPUs). Tables are byte-identical at any worker count —
// every simulation is a sealed deterministic machine and workers write
// disjoint result slots; -compare re-runs each figure serially and
// fails if the parallel table differs.
//
// With -json the run also executes a representative telemetry-
// instrumented simulation (whose per-class link bandwidth and inform
// counters populate the report's "bandwidth" section) and the checker
// microbenchmarks (ns/op + allocs/op for the VC-replay, CET-update,
// MET-inform, event queue, torus, and trace-encode hot paths), then
// writes a machine-readable report. -metrics-out additionally records
// that instrumented run's full telemetry snapshot for dvmc-stat.
//
// Example:
//
//	dvmc-bench -fig all -reps 3 -txns 150
//	dvmc-bench -fig 5 -json BENCH.json
//	dvmc-bench -fig all -workers 8 -compare -json BENCH_PR5.json -metrics-out bench.metrics.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dvmc"
	"dvmc/internal/telemetry"
)

type figureReport struct {
	Key          string  `json:"key"`
	Name         string  `json:"name"`
	WallMS       float64 `json:"wall_ms"`
	SerialWallMS float64 `json:"serial_wall_ms,omitempty"`
	// ParallelSpeedup is the percent wall clock saved by the parallel run
	// against the serial re-run (-compare). Null when the host has a
	// single core: the comparison then measures goroutine overhead, not
	// speedup, and reporting a number would be dishonest.
	ParallelSpeedup *float64 `json:"parallel_speedup"`
	Identical       *bool    `json:"tables_identical,omitempty"`
}

type microReport struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// bandwidthReport carries the Figure 7 headline numbers from one
// representative instrumented run: peak link utilisation broken down by
// traffic class, plus the coherence-checker inform counters that drive
// the inform class.
type bandwidthReport struct {
	Workload         string             `json:"workload"`
	Transactions     uint64             `json:"transactions"`
	Cycles           uint64             `json:"cycles"`
	MaxLinkBandwidth float64            `json:"max_link_bytes_per_cycle"`
	MaxLinkByClass   map[string]float64 `json:"max_link_by_class"`
	TotalLinkBytes   uint64             `json:"total_link_bytes"`
	Informs          uint64             `json:"informs"`
	OpenInforms      uint64             `json:"open_informs"`
	InformsProcessed uint64             `json:"informs_processed"`
}

type report struct {
	GoVersion    string           `json:"go_version"`
	GOOS         string           `json:"goos"`
	GOARCH       string           `json:"goarch"`
	CPUs         int              `json:"cpus"`
	Workers      int              `json:"workers"`
	Repetitions  int              `json:"repetitions"`
	Transactions uint64           `json:"transactions"`
	Compared     bool             `json:"compared_serial_vs_parallel"`
	SingleCore   bool             `json:"single_core"`
	Figures      []figureReport   `json:"figures"`
	Bandwidth    *bandwidthReport `json:"bandwidth,omitempty"`
	Micro        []microReport    `json:"microbenchmarks"`
}

// runInstrumented executes one representative telemetry-enabled run
// (oltp on the default 8-node directory/TSO system) and returns its
// results plus the telemetry snapshot. It powers both the JSON report's
// bandwidth section and the -metrics-out snapshot.
func runInstrumented(txns uint64) (dvmc.Results, *telemetry.Snapshot, error) {
	cfg := dvmc.ScaledConfig().WithTelemetry(dvmc.TelemetryOn())
	w, err := dvmc.WorkloadByName("oltp")
	if err != nil {
		return dvmc.Results{}, nil, err
	}
	sys, err := dvmc.NewSystem(cfg, w)
	if err != nil {
		return dvmc.Results{}, nil, err
	}
	res, err := sys.Run(txns, 100_000_000)
	if err != nil {
		return dvmc.Results{}, nil, err
	}
	sys.DrainCheckers()
	return res, sys.TelemetrySnapshot(), nil
}

func main() {
	var (
		fig        = flag.String("fig", "all", "figure to regenerate: 3|4|5|6|7|8|9|errors|all")
		reps       = flag.Int("reps", 3, "perturbed repetitions per configuration")
		txns       = flag.Uint64("txns", 120, "transactions per run")
		workers    = flag.Int("workers", 0, "worker pool size for the figure matrices (0 = min(GOMAXPROCS, jobs), 1 = serial)")
		jsonPath   = flag.String("json", "", "write a machine-readable report (wall clocks + checker microbenchmarks) to this file")
		compare    = flag.Bool("compare", false, "re-run each figure serially and fail unless the parallel table is identical")
		metricsOut = flag.String("metrics-out", "", "write the representative run's telemetry snapshot to this file (.json|.prom|.csv|.series.csv; '-' for stdout JSON)")
	)
	flag.Parse()
	if *workers <= 0 {
		// Resolve "auto" here so the JSON report records the actual pool
		// cap; parallelFor still clamps to each figure's job count.
		*workers = runtime.GOMAXPROCS(0)
	}

	opts := dvmc.DefaultExperimentOpts()
	opts.Repetitions = *reps
	opts.Transactions = *txns
	opts.Workers = *workers

	type job struct {
		name string
		run  func(dvmc.ExperimentOpts) (dvmc.Table, error)
	}
	jobs := map[string]job{
		"3": {"Figure 3", func(o dvmc.ExperimentOpts) (dvmc.Table, error) { return dvmc.FigureRuntimes(dvmc.Directory, o) }},
		"4": {"Figure 4", func(o dvmc.ExperimentOpts) (dvmc.Table, error) { return dvmc.FigureRuntimes(dvmc.Snooping, o) }},
		"5": {"Figure 5", dvmc.Figure5},
		"6": {"Figure 6", dvmc.Figure6},
		"7": {"Figure 7", dvmc.Figure7},
		"8": {"Figure 8", dvmc.Figure8},
		"9": {"Figure 9", dvmc.Figure9},
		"errors": {"Section 6.1", func(o dvmc.ExperimentOpts) (dvmc.Table, error) {
			return dvmc.ErrorDetectionTable(10, 400_000, 42, o.Workers)
		}},
	}
	order := []string{"3", "4", "5", "6", "7", "8", "9", "errors"}

	var selected []string
	if *fig == "all" {
		selected = order
	} else if _, ok := jobs[*fig]; ok {
		selected = []string{*fig}
	} else {
		fmt.Fprintf(os.Stderr, "dvmc-bench: unknown figure %q\n", *fig)
		os.Exit(1)
	}

	rep := report{
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		CPUs:         runtime.NumCPU(),
		Workers:      *workers,
		Repetitions:  *reps,
		Transactions: *txns,
		Compared:     *compare,
		SingleCore:   runtime.GOMAXPROCS(0) == 1,
	}
	if rep.SingleCore && *compare {
		fmt.Println("single core (GOMAXPROCS=1): parallel speedup will not be measured")
	}

	for _, key := range selected {
		j := jobs[key]
		start := time.Now()
		t, err := j.run(opts)
		wall := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvmc-bench: %s: %v\n", j.name, err)
			os.Exit(1)
		}
		fmt.Println(t)
		fmt.Printf("  [%s regenerated in %v, %d worker(s)]\n\n", j.name, wall.Round(time.Millisecond), *workers)

		fr := figureReport{Key: key, Name: j.name, WallMS: float64(wall.Microseconds()) / 1000}
		if *compare {
			sOpts := opts
			sOpts.Workers = 1
			sStart := time.Now()
			st, err := j.run(sOpts)
			sWall := time.Since(sStart)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dvmc-bench: %s (serial re-run): %v\n", j.name, err)
				os.Exit(1)
			}
			identical := st.String() == t.String()
			fr.SerialWallMS = float64(sWall.Microseconds()) / 1000
			if sWall > 0 && !rep.SingleCore {
				sp := 100 * (1 - wall.Seconds()/sWall.Seconds())
				fr.ParallelSpeedup = &sp
			}
			fr.Identical = &identical
			fmt.Printf("  [serial re-run %v; parallel table identical: %v]\n\n", sWall.Round(time.Millisecond), identical)
			if !identical {
				fmt.Fprintf(os.Stderr, "dvmc-bench: %s: parallel table differs from serial table (determinism regression)\n", j.name)
				os.Exit(1)
			}
		}
		rep.Figures = append(rep.Figures, fr)
	}

	if *jsonPath != "" || *metricsOut != "" {
		fmt.Println("running representative instrumented run (oltp, telemetry on)...")
		res, snap, err := runInstrumented(*txns)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvmc-bench: instrumented run: %v\n", err)
			os.Exit(1)
		}
		bw := &bandwidthReport{
			Workload:         "oltp",
			Transactions:     res.Transactions,
			Cycles:           res.Cycles,
			MaxLinkBandwidth: res.MaxLinkBandwidth,
			MaxLinkByClass:   make(map[string]float64, len(res.MaxLinkByClass)),
			TotalLinkBytes:   res.TotalLinkBytes,
			Informs:          res.Informs,
			OpenInforms:      res.OpenInforms,
			InformsProcessed: res.InformsProcessed,
		}
		for cl, v := range res.MaxLinkByClass {
			bw.MaxLinkByClass[cl.String()] = v
		}
		rep.Bandwidth = bw
		fmt.Printf("  max link %.3f B/cycle, %d bytes total, %d informs (+%d open)\n",
			bw.MaxLinkBandwidth, bw.TotalLinkBytes, bw.Informs, bw.OpenInforms)
		if *metricsOut != "" {
			if err := telemetry.WriteSnapshotFile(snap, *metricsOut); err != nil {
				fmt.Fprintf(os.Stderr, "dvmc-bench: %v\n", err)
				os.Exit(1)
			}
			if *metricsOut != "-" {
				fmt.Printf("  telemetry snapshot written to %s\n", *metricsOut)
			}
		}
	}

	if *jsonPath != "" {
		fmt.Println("running checker microbenchmarks...")
		rep.Micro = runMicrobenchmarks()
		for _, m := range rep.Micro {
			fmt.Printf("  %-28s %12.1f ns/op %6d B/op %4d allocs/op\n", m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvmc-bench: encode report: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dvmc-bench: write report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *jsonPath)
	}
}
