// Command dvmc-bench regenerates the paper's evaluation: every figure of
// Section 6 (runtimes per model and protocol, the DVMC component
// breakdown, replay misses, link bandwidth, and the two sensitivity
// sweeps) plus the Section 6.1 error-detection campaign.
//
// Example:
//
//	dvmc-bench -fig all -reps 3 -txns 150
//	dvmc-bench -fig 5
//	dvmc-bench -fig errors
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dvmc"
)

func main() {
	var (
		fig  = flag.String("fig", "all", "figure to regenerate: 3|4|5|6|7|8|9|errors|all")
		reps = flag.Int("reps", 3, "perturbed repetitions per configuration")
		txns = flag.Uint64("txns", 120, "transactions per run")
	)
	flag.Parse()

	opts := dvmc.DefaultExperimentOpts()
	opts.Repetitions = *reps
	opts.Transactions = *txns

	type job struct {
		name string
		run  func() (dvmc.Table, error)
	}
	jobs := map[string]job{
		"3":      {"Figure 3", func() (dvmc.Table, error) { return dvmc.FigureRuntimes(dvmc.Directory, opts) }},
		"4":      {"Figure 4", func() (dvmc.Table, error) { return dvmc.FigureRuntimes(dvmc.Snooping, opts) }},
		"5":      {"Figure 5", func() (dvmc.Table, error) { return dvmc.Figure5(opts) }},
		"6":      {"Figure 6", func() (dvmc.Table, error) { return dvmc.Figure6(opts) }},
		"7":      {"Figure 7", func() (dvmc.Table, error) { return dvmc.Figure7(opts) }},
		"8":      {"Figure 8", func() (dvmc.Table, error) { return dvmc.Figure8(opts) }},
		"9":      {"Figure 9", func() (dvmc.Table, error) { return dvmc.Figure9(opts) }},
		"errors": {"Section 6.1", func() (dvmc.Table, error) { return dvmc.ErrorDetectionTable(10, 400_000, 42) }},
	}
	order := []string{"3", "4", "5", "6", "7", "8", "9", "errors"}

	var selected []string
	if *fig == "all" {
		selected = order
	} else if _, ok := jobs[*fig]; ok {
		selected = []string{*fig}
	} else {
		fmt.Fprintf(os.Stderr, "dvmc-bench: unknown figure %q\n", *fig)
		os.Exit(1)
	}

	for _, key := range selected {
		j := jobs[key]
		start := time.Now()
		t, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvmc-bench: %s: %v\n", j.name, err)
			os.Exit(1)
		}
		fmt.Println(t)
		fmt.Printf("  [%s regenerated in %v]\n\n", j.name, time.Since(start).Round(time.Millisecond))
	}
}
