package main

import (
	"io"
	"testing"

	"dvmc/internal/coherence"
	"dvmc/internal/consistency"
	"dvmc/internal/core"
	"dvmc/internal/mem"
	"dvmc/internal/network"
	"dvmc/internal/sim"
	"dvmc/internal/trace"
)

// The microbenchmarks below mirror the package-level testing.B
// benchmarks (internal/core, internal/sim, internal/network,
// internal/trace) so the -json report can carry ns/op and allocs/op
// without shelling out to `go test`. The steady-state checker paths are
// allocation-free by design; the AllocsPerRun tests in those packages
// enforce it, and the numbers here record it.

func runMicrobenchmarks() []microReport {
	micros := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"core/VCReplay", microVCReplay},
		{"core/CETUpdate", microCETUpdate},
		{"core/METHandleInform", microMETHandle},
		{"sim/EventQueue", microEventQueue},
		{"network/TorusSendDeliver", microTorus},
		{"trace/Write", microTraceWrite},
	}
	out := make([]microReport, 0, len(micros))
	for _, m := range micros {
		r := testing.Benchmark(m.fn)
		out = append(out, microReport{
			Name:        m.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
	}
	return out
}

func nullSink() core.Sink { return core.SinkFunc(func(core.Violation) {}) }

func microVCReplay(b *testing.B) {
	u := core.NewUniprocChecker(0, 64, true, nullSink())
	step := func(i int) {
		addr := mem.Addr(8 * (i & 15))
		v := mem.Word(i)
		u.StoreCommitted(addr, v)
		u.StorePerformed(addr, v, sim.Cycle(i))
		u.ReplayLoad(addr, v, sim.Cycle(i))
	}
	for i := 0; i < 512; i++ {
		step(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(i)
	}
}

// bumpClock is a manually advanced logical clock.
type bumpClock struct{ t uint64 }

func (c *bumpClock) LogicalNow() uint64 { return c.t }

// releaseNet consumes informs the way the system does: hand the message
// to the MET and return it to the pool.
type releaseNet struct {
	pool *core.InformPool
	met  *core.MemChecker
}

func (n *releaseNet) Send(m *network.Message) {
	if n.met != nil {
		n.met.Handle(m)
	}
	n.pool.Release(m)
}
func (n *releaseNet) SetHandler(network.NodeID, network.Handler) {}
func (n *releaseNet) Nodes() int                                 { return 8 }
func (n *releaseNet) LinkStats() []network.LinkStat              { return nil }
func (n *releaseNet) SetFaultHook(network.FaultHook)             {}
func (n *releaseNet) Tick(sim.Cycle)                             {}

func microCfg() coherence.Config {
	return coherence.Config{Nodes: 8, L1Sets: 2, L1Ways: 1, L2Sets: 4, L2Ways: 2,
		L1Latency: 1, L2Latency: 2, MemLatency: 10, MSHRs: 4}
}

func microCETUpdate(b *testing.B) {
	pool := &core.InformPool{}
	clock := &bumpClock{t: 100}
	var cyc sim.Cycle
	now := func() sim.Cycle { return cyc }
	met := core.NewMemChecker(0, microCfg(), clock, now, nullSink())
	net := &releaseNet{pool: pool, met: met}
	cet := core.NewCacheChecker(1, microCfg(), net, clock, now, nullSink())
	cet.SetInformPool(pool)
	var data mem.Block
	step := func(i int) {
		blk := mem.BlockAddr(0x80 * (i & 15))
		clock.t += 4
		cet.EpochBegin(blk, coherence.ReadWrite, clock.t, true, data)
		cet.Access(blk, true)
		cet.EpochEnd(blk, coherence.ReadWrite, clock.t+1, data)
		cyc++
		met.Tick(cyc)
	}
	for i := 0; i < 1024; i++ {
		step(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(i)
	}
}

func microMETHandle(b *testing.B) {
	clock := &bumpClock{t: 100}
	var cyc sim.Cycle
	met := core.NewMemChecker(0, microCfg(), clock, func() sim.Cycle { return cyc }, nullSink())
	inform := core.InformEpoch{Block: 0x80, Kind: coherence.ReadWrite, From: 1}
	msg := &network.Message{Payload: &inform}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.t += 4
		inform.Begin = core.Wrap(clock.t)
		inform.End = core.Wrap(clock.t + 1)
		met.Handle(msg)
		cyc++
		met.Tick(cyc)
	}
}

func microEventQueue(b *testing.B) {
	var q sim.EventQueue
	fn := func() {}
	for i := 0; i < 256; i++ {
		q.At(sim.Cycle(i), fn)
	}
	q.Tick(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := sim.Cycle(256 + i)
		q.At(now+4, fn)
		q.Tick(now)
	}
}

func microTorus(b *testing.B) {
	tor := network.NewTorus(4, 1.25, 2, sim.NewRand(1))
	for n := 0; n < 4; n++ {
		tor.SetHandler(network.NodeID(n), func(*network.Message) {})
	}
	msgs := [4]network.Message{}
	now := sim.Cycle(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &msgs[i&3]
		*m = network.Message{Src: network.NodeID(i & 3), Dst: network.NodeID((i + 1) & 3), Size: 16, Class: network.ClassCoherence}
		tor.Send(m)
		for j := 0; j < 8; j++ {
			now++
			tor.Tick(now)
		}
	}
}

func microTraceWrite(b *testing.B) {
	w, err := trace.NewWriter(io.Discard, trace.Meta{Nodes: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := trace.Event{Kind: trace.EvCommit, Node: uint8(i & 3), Class: consistency.Store,
			Model: consistency.TSO, Seq: uint64(i), Addr: 0x100, Val: 0x42, Time: 1}
		if err := w.Write(ev); err != nil {
			b.Fatal(err)
		}
	}
}
