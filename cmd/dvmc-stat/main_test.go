package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"dvmc"
)

// TestMain lets tests re-exec this binary as dvmc-stat itself: with the
// dispatch variable set, the process runs main() on its argv instead of
// the test suite, so exit codes and stderr are observed exactly as a
// shell would see them.
func TestMain(m *testing.M) {
	if os.Getenv("DVMC_STAT_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runStat re-executes the test binary as dvmc-stat with the given
// arguments, returning exit code, stdout, and stderr.
func runStat(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "DVMC_STAT_RUN_MAIN=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("re-exec: %v", err)
	}
	return code, stdout.String(), stderr.String()
}

// TestDumpMalformedSnapshotExitsTwo is the regression test for the
// malformed-snapshot contract: a snapshot that exists but does not
// decode must exit 2 (failed artifact, not usage error) and the error
// must name the offending source, so a sweep over many files points at
// the bad one.
func TestDumpMalformedSnapshotExitsTwo(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"garbage.json":   "{not json at all",
		"truncated.json": `{"cycle": 12, "metrics": [{"name": "x"`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		code, _, stderr := runStat(t, "dump", path)
		if code != 2 {
			t.Errorf("dump %s: exit %d, want 2; stderr: %s", name, code, stderr)
		}
		if !strings.Contains(stderr, path) {
			t.Errorf("dump %s: stderr does not name the source %q: %s", name, path, stderr)
		}
		if !strings.Contains(stderr, "decoding snapshot") {
			t.Errorf("dump %s: stderr lacks decode context: %s", name, stderr)
		}
	}
}

// TestDumpMissingFileExitsOne pins the other side of the contract: an
// I/O error (the file does not exist) stays exit 1.
func TestDumpMissingFileExitsOne(t *testing.T) {
	code, _, stderr := runStat(t, "dump", filepath.Join(t.TempDir(), "absent.json"))
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr)
	}
}

// TestTimelineRendersStrictChromeJSON runs a small system end-to-end:
// record spans, render the dump through the timeline subcommand, and
// strict-decode the Chrome trace JSON it emits.
func TestTimelineRendersStrictChromeJSON(t *testing.T) {
	cfg := dvmc.ScaledConfig().WithNodes(4).WithSpans(dvmc.SpansOn())
	w, err := dvmc.WorkloadByName("oltp")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := dvmc.NewSystem(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	sys.RunCycles(8192)
	dump, err := sys.SpanBytes()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.spans")
	if err := os.WriteFile(path, dump, 0o644); err != nil {
		t.Fatal(err)
	}

	code, stdout, stderr := runStat(t, "timeline", path)
	if code != 0 {
		t.Fatalf("timeline: exit %d; stderr: %s", code, stderr)
	}
	dec := json.NewDecoder(strings.NewReader(stdout))
	dec.DisallowUnknownFields()
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := dec.Decode(&out); err != nil {
		t.Fatalf("timeline output is not strict Chrome JSON: %v", err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("timeline produced no events")
	}
}

// TestTimelineCorruptDumpExitsTwo: a span dump with a flipped byte
// fails its CRC and must exit 2 naming the source.
func TestTimelineCorruptDumpExitsTwo(t *testing.T) {
	cfg := dvmc.ScaledConfig().WithNodes(4).WithSpans(dvmc.SpansOn())
	w, err := dvmc.WorkloadByName("oltp")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := dvmc.NewSystem(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	sys.RunCycles(4096)
	dump, err := sys.SpanBytes()
	if err != nil {
		t.Fatal(err)
	}
	dump[len(dump)/2] ^= 0x40
	path := filepath.Join(t.TempDir(), "corrupt.spans")
	if err := os.WriteFile(path, dump, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runStat(t, "timeline", path)
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, path) {
		t.Fatalf("stderr does not name the source: %s", stderr)
	}
}
