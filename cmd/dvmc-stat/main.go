// Command dvmc-stat inspects telemetry snapshots: the JSON files
// written by the -metrics-out flags of dvmc-sim, dvmc-bench, dvmc-fuzz,
// and dvmc-farm, or fetched live from an http(s) URL (dvmc-sim -http's
// /metrics, a dvmc-farm coordinator's /metrics.json). The JSON snapshot
// is the interchange format; every other rendering (Prometheus text,
// CSV, human-readable) is re-encoded from it, so all views agree by
// construction.
//
// Subcommands:
//
//	dump      re-encode a snapshot (text, json, prom, csv, series-csv)
//	series    print tracked time series as CSV, optionally filtered
//	top       rank metrics by value
//	timeline  render a binary span dump (-spans-out) as Chrome
//	          trace-event JSON, loadable in Perfetto / chrome://tracing
//
// Exit codes (all subcommands): 0 clean, 1 usage or I/O error, 2 the
// snapshot records checker violations or the artifact is malformed —
// the same convention as dvmc-trace and dvmc-fuzz (a corrupt artifact
// is a failed verification of the artifact, not a tool usage error).
//
// Examples:
//
//	dvmc-sim -workload oltp -txns 200 -metrics-out run.json
//	dvmc-stat dump run.json
//	dvmc-stat dump -format prom run.json
//	dvmc-stat series -metric checker.met_queue_depth run.json
//	dvmc-stat top -n 10 run.json
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"dvmc"
	"dvmc/internal/span"
	"dvmc/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "dump":
		dump(os.Args[2:])
	case "series":
		series(os.Args[2:])
	case "top":
		top(os.Args[2:])
	case "timeline":
		timeline(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fatalf("unknown subcommand %q (want dump, series, top, or timeline)", os.Args[1])
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  dvmc-stat dump     [-format text|json|prom|csv|series-csv] <snapshot>
  dvmc-stat series   [-metric NAME] <snapshot>
  dvmc-stat top      [-n N] [-kind counter|gauge] <snapshot>
  dvmc-stat timeline [-o FILE] <spans>

<snapshot> is a JSON snapshot file written by the -metrics-out flags of
dvmc-sim, dvmc-bench, dvmc-fuzz, or dvmc-farm; '-' for stdin; or an
http(s):// URL — dvmc-sim -http's /metrics or a dvmc-farm coordinator's
/metrics.json for a live farm-wide view. All renderings are derived
from the JSON, so text, Prometheus, and CSV views always agree.

<spans> is a binary span dump written by the -spans-out flags of
dvmc-sim, dvmc-fuzz, or dvmc-farm ('-' for stdin); timeline renders it
as Chrome trace-event JSON for Perfetto / chrome://tracing.

exit codes: 0 clean, 1 usage or I/O error, 2 the snapshot records
checker violations or the artifact failed to decode.
`)
	os.Exit(1)
}

// newFlagSet builds a flag set that exits 1 (usage), not 2, on parse
// errors — exit 2 is reserved for snapshots with recorded violations.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

func parseFlags(fs *flag.FlagSet, args []string) {
	if err := fs.Parse(args); err != nil {
		os.Exit(1)
	}
}

// load decodes the snapshot named by the single positional argument:
// a file path, "-" for stdin, or an http(s):// URL — the live /metrics
// endpoint of dvmc-sim -http or a dvmc-farm coordinator's
// /metrics.json, so a running farm can be watched with the same tool
// that reads recorded files.
func load(fs *flag.FlagSet) *telemetry.Snapshot {
	if fs.NArg() != 1 {
		fatalf("%s: need exactly one snapshot source (file, '-' for stdin, or http(s) URL)", fs.Name())
	}
	path := fs.Arg(0)
	var r io.Reader = os.Stdin
	switch {
	case strings.HasPrefix(path, "http://") || strings.HasPrefix(path, "https://"):
		resp, err := http.Get(path)
		if err != nil {
			fatalf("%v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatalf("%s: %s", path, resp.Status)
		}
		r = resp.Body
	case path != "-":
		f, err := os.Open(path)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r = f
	}
	snap, err := telemetry.DecodeSnapshot(r)
	if err != nil {
		// A snapshot that exists but does not decode is a failed artifact,
		// not a usage error: exit 2, with the source named so a farm-wide
		// sweep over many files points at the bad one.
		fmt.Fprintf(os.Stderr, "dvmc-stat: %s: decoding snapshot: %v\n", path, err)
		os.Exit(2)
	}
	return snap
}

// exitOn reports recorded violations with exit code 2 (after the
// requested output was produced).
func exitOn(snap *telemetry.Snapshot) {
	if len(snap.Events) > 0 || snap.EventsDropped > 0 {
		fmt.Fprintf(os.Stderr, "dvmc-stat: snapshot records %d violation event(s)\n",
			uint64(len(snap.Events))+snap.EventsDropped)
		os.Exit(2)
	}
}

func dump(args []string) {
	fs := newFlagSet("dump")
	format := fs.String("format", "text", "output format: text|json|prom|csv|series-csv")
	parseFlags(fs, args)
	snap := load(fs)
	var err error
	switch *format {
	case "text":
		err = snap.Text(os.Stdout)
	case "json":
		err = snap.EncodeJSON(os.Stdout)
	case "prom":
		err = snap.Prometheus(os.Stdout)
	case "csv":
		err = snap.CSV(os.Stdout)
	case "series-csv":
		err = snap.SeriesCSV(os.Stdout)
	default:
		fatalf("dump: unknown format %q", *format)
	}
	if err != nil {
		fatalf("dump: %v", err)
	}
	exitOn(snap)
}

func series(args []string) {
	fs := newFlagSet("series")
	metric := fs.String("metric", "", "only this metric's series (default: all tracked)")
	parseFlags(fs, args)
	snap := load(fs)
	if *metric != "" {
		filtered := snap.Series[:0:0]
		for _, s := range snap.Series {
			if s.Name == *metric {
				filtered = append(filtered, s)
			}
		}
		if len(filtered) == 0 {
			fatalf("series: no tracked series named %q in snapshot", *metric)
		}
		snap.Series = filtered
	}
	if err := snap.SeriesCSV(os.Stdout); err != nil {
		fatalf("series: %v", err)
	}
	exitOn(snap)
}

func top(args []string) {
	fs := newFlagSet("top")
	n := fs.Int("n", 10, "how many metrics to show")
	kind := fs.String("kind", "", "restrict to one kind: counter|gauge")
	parseFlags(fs, args)
	if *kind != "" && *kind != "counter" && *kind != "gauge" {
		fatalf("top: unknown kind %q", *kind)
	}
	snap := load(fs)
	ms := make([]telemetry.MetricSnapshot, 0, len(snap.Metrics))
	for _, m := range snap.Metrics {
		if *kind == "" || m.Kind == *kind {
			ms = append(ms, m)
		}
	}
	sort.SliceStable(ms, func(i, j int) bool {
		ti, tj := ms[i].Total(), ms[j].Total()
		if ti != tj {
			return ti > tj
		}
		return ms[i].Name < ms[j].Name
	})
	if *n < len(ms) {
		ms = ms[:*n]
	}
	fmt.Printf("top %d metrics @ cycle %d\n", len(ms), snap.Cycle)
	for _, m := range ms {
		fmt.Printf("  %-36s %-8s %14d\n", m.Name, m.Kind, m.Total())
	}
	exitOn(snap)
}

// timeline renders a binary span dump as Chrome trace-event JSON: one
// "X" slice per span (transaction, fault flight, or phase sample) and
// one "i" instant per child event, ready for Perfetto or
// chrome://tracing. Timestamps are simulated cycles, shown as µs.
func timeline(args []string) {
	fs := newFlagSet("timeline")
	out := fs.String("o", "", "write the JSON here instead of stdout")
	parseFlags(fs, args)
	if fs.NArg() != 1 {
		fatalf("timeline: need exactly one span dump source (file or '-' for stdin)")
	}
	path := fs.Arg(0)
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		fatalf("%v", err)
	}
	meta, spans, err := span.Decode(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvmc-stat: %s: decoding span dump: %v\n", path, err)
		os.Exit(2)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := span.WriteChrome(w, meta, spans, spanName); err != nil {
		fatalf("timeline: %v", err)
	}
}

// spanName renders span display names with the fault-kind vocabulary
// the injection campaigns use, so a flight recording reads
// "fault msg-drop", not "fault kind=1".
func spanName(s *span.Span) string {
	if s.Family == span.FamilyFault {
		return "fault " + dvmc.FaultKind(s.Kind).String()
	}
	return s.Name()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dvmc-stat: "+format+"\n", args...)
	os.Exit(1)
}
