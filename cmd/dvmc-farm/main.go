// Command dvmc-farm runs a distributed campaign: a coordinator shards
// a fuzzing campaign or the Section 6.1 injection matrix into leases,
// workers (local or on other machines) execute them over HTTP+JSON, and
// the coordinator merges the results into artifacts byte-identical to a
// serial single-process run — at any worker count, join/leave order, or
// crash/retry schedule.
//
// Subcommands:
//
//	serve   start a coordinator for a new job and wait for completion
//	resume  restart a coordinator from its checkpoint file
//	work    run a worker against a coordinator
//	status  print a coordinator's progress
//
// The coordinator journals accepted results to an append-only
// checkpoint (-checkpoint); if it crashes, `resume` picks up without
// re-running completed shards. Workers may come and go freely: leases
// expire and are stolen, and re-executed shards reproduce identical
// bytes, so the merged output never depends on the schedule.
//
// Exit codes: 0 clean, 1 usage or I/O error, 2 campaign failure found
// (fuzz: escape, false alarm, or crash; experiment: undetected faults).
//
// Example (two terminals):
//
//	dvmc-farm serve -seed 1 -n 500 -corpus corpus/ -checkpoint farm.ckpt
//	dvmc-farm work -coordinator http://127.0.0.1:8700
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"dvmc/internal/fabric"
	"dvmc/internal/fuzz"
	"dvmc/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:], false)
	case "resume":
		serve(os.Args[2:], true)
	case "work":
		work(os.Args[2:])
	case "status":
		status(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fatalf("unknown subcommand %q (want serve, resume, work, or status)", os.Args[1])
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  dvmc-farm serve  [flags]    coordinate a new sharded campaign
  dvmc-farm resume [flags]    restart a coordinator from -checkpoint
  dvmc-farm work   [flags]    execute leases for a coordinator
  dvmc-farm status [flags]    print a coordinator's progress

The merged results are byte-identical to a serial run of the same
campaign, regardless of worker count, ordering, or crashes.
'<sub> -h' lists each subcommand's flags.

exit codes: 0 clean, 1 usage or I/O error, 2 campaign failure found
`)
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dvmc-farm: "+format+"\n", args...)
	os.Exit(1)
}

// parseKinds splits a comma-separated fault-kind list ("" = all kinds).
func parseKinds(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, k := range strings.Split(s, ",") {
		if k = strings.TrimSpace(k); k != "" {
			out = append(out, k)
		}
	}
	return out
}

func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

func parseFlags(fs *flag.FlagSet, args []string) {
	if err := fs.Parse(args); err != nil {
		os.Exit(1)
	}
}

// serve runs a coordinator to completion: bind, hand out leases, merge
// results, write artifacts. resume=true loads the job from -checkpoint
// instead of the job flags.
func serve(args []string, resume bool) {
	name := "serve"
	if resume {
		name = "resume"
	}
	fs := newFlagSet(name)
	var (
		addr       = fs.String("addr", "127.0.0.1:8700", "coordinator listen address")
		checkpoint = fs.String("checkpoint", "", "append-only journal of accepted results (required for resume)")
		ttl        = fs.Uint64("ttl", 60, "lease TTL in seconds before a shard is stealable")
		shard      = fs.Int("shard", fabric.DefaultShardSize, "cases per lease")
		jsonOut    = fs.Bool("json", false, "print the fuzz summary as JSON")
		recordsOut = fs.String("records-out", "", "write the full fuzz record table (JSON) to this file")
		metricsOut = fs.String("metrics-out", "", "write the merged telemetry snapshot to this file ('-' for stdout; needs -metrics)")
		spansOut   = fs.String("spans-out", "", "fuzz/coverage: re-run the first failing case (else the first case) with span recording and write its dump to this file")

		// Job flags (serve only; resume reads the spec from the journal).
		kind      = fs.String("job", "fuzz", "job kind: fuzz | coverage | experiment")
		seed      = fs.Uint64("seed", 1, "campaign master seed")
		n         = fs.Int("n", 200, "fuzz/coverage: number of runs")
		faultFrac = fs.Float64("fault-frac", 0.5, "fuzz/coverage: fraction of runs that inject a fault")
		budget    = fs.Uint64("budget", fuzz.DefaultBudget, "per-run cycle budget")
		corpus    = fs.String("corpus", "", "fuzz/coverage: directory for minimized failure reproducers")
		minimize  = fs.Bool("minimize", true, "fuzz/coverage: delta-debug failures before writing them")
		minBudget = fs.Int("minimize-budget", fuzz.DefaultMinimizeBudget, "fuzz/coverage: max re-runs per minimized failure")
		metrics   = fs.Bool("metrics", false, "fuzz/coverage: instrument every case and merge telemetry farm-wide")
		kinds     = fs.String("kinds", "", "fuzz/coverage: comma-separated fault kinds to inject (default all)")
		gens      = fs.Int("gens", 4, "coverage: breeding generations after the random prefix")
		genSize   = fs.Int("gen-size", 0, "coverage: mutants per generation (0 = n/8, min 1)")
		faults    = fs.Int("faults", 100, "experiment: injections per protocol x model row")
	)
	parseFlags(fs, args)
	if fs.NArg() != 0 {
		fatalf("%s: unexpected arguments %v", name, fs.Args())
	}

	opts := fabric.CoordinatorOptions{CheckpointPath: *checkpoint, TTLSeconds: *ttl}
	var coord *fabric.Coordinator
	var err error
	if resume {
		if *checkpoint == "" {
			fatalf("resume: -checkpoint is required")
		}
		coord, err = fabric.ResumeCoordinator(*checkpoint, opts)
	} else {
		spec := fabric.JobSpec{Kind: fabric.JobKind(*kind), ShardSize: *shard}
		base := fuzz.CampaignConfig{
			Seed: *seed, Runs: *n, FaultFrac: *faultFrac, Budget: *budget,
			CorpusDir: *corpus, Minimize: *minimize, MinimizeBudget: *minBudget,
			Metrics: *metrics, Kinds: parseKinds(*kinds),
		}
		switch spec.Kind {
		case fabric.JobFuzz:
			spec.Fuzz = &base
		case fabric.JobCoverage:
			size := *genSize
			if size <= 0 {
				size = *n / 8
				if size < 1 {
					size = 1
				}
			}
			init := *n - *gens*size
			if init < 1 {
				fatalf("serve: -n %d leaves no random prefix for %d generations of %d", *n, *gens, size)
			}
			spec.Coverage = &fuzz.CoverageConfig{
				Campaign: base, InitRuns: init, Generations: *gens, PerGen: size,
			}
		case fabric.JobExperiment:
			spec.Experiment = &fabric.ExperimentSpec{Faults: *faults, Budget: *budget, Seed: *seed}
		default:
			fatalf("serve: unknown -job %q", *kind)
		}
		coord, err = fabric.NewCoordinator(spec, opts)
	}
	if err != nil {
		fatalf("%s: %v", name, err)
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("%s: %v", name, err)
	}
	srv := &http.Server{Handler: coord}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fatalf("%s: %v", name, err)
		}
	}()
	st := coord.Status()
	fmt.Fprintf(os.Stderr, "dvmc-farm: coordinating %s job: %d cases in %d shards on %s (%d already done)\n",
		st.Kind, st.Cases, st.Total, ln.Addr(), st.Done)

	<-coord.Done()
	out, err := coord.Finalize()
	if err != nil {
		fatalf("%s: %v", name, err)
	}
	failed, err := writeOutputs(coord, out, *jsonOut, *recordsOut, *metricsOut)
	if err != nil {
		fatalf("%s: %v", name, err)
	}
	if *spansOut != "" {
		if out.Records == nil {
			fatalf("%s: -spans-out needs a fuzz or coverage job", name)
		}
		rec, err := fuzz.WriteSpans(out.Records, *spansOut)
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(os.Stderr, "dvmc-farm: span dump for run %d (%s) written to %s\n",
			rec.Index, rec.Result.Class, *spansOut)
	}
	// Linger past the workers' poll interval so they observe the job's
	// Done state instead of a vanished coordinator.
	time.Sleep(4 * time.Second)
	srv.Shutdown(context.Background())
	if failed {
		os.Exit(2)
	}
}

// writeOutputs renders a finished job's artifacts exactly as the serial
// CLIs do (dvmc-fuzz's summary encoding, the experiments' table text),
// so farm output files can be compared byte-for-byte against serial
// baselines.
func writeOutputs(coord *fabric.Coordinator, out *fabric.Output, jsonOut bool, recordsOut, metricsOut string) (failed bool, err error) {
	if out.Records != nil {
		// Coverage jobs render the extended summary (features, pool,
		// per-generation novelty) the serial dvmc-fuzz -coverage prints.
		var summary any = out.Summary
		if out.Coverage != nil {
			summary = *out.Coverage
		}
		if jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(summary); err != nil {
				return false, err
			}
		} else {
			fmt.Print(summary)
		}
		if recordsOut != "" {
			data, err := json.MarshalIndent(out.Records, "", "  ")
			if err != nil {
				return false, err
			}
			if err := os.WriteFile(recordsOut, append(data, '\n'), 0o644); err != nil {
				return false, err
			}
		}
		if metricsOut != "" && out.Snapshot != nil {
			if err := telemetry.WriteSnapshotFile(out.Snapshot, metricsOut); err != nil {
				return false, err
			}
		}
		if out.Summary.Failed() {
			fmt.Fprintf(os.Stderr, "dvmc-farm: %d failing runs\n", out.Summary.Failures)
			return true, nil
		}
		return false, nil
	}

	// Experiment job: print the table; fail on undetected faults.
	fmt.Print(out.Table)
	undetected := 0
	for _, c := range out.Campaigns {
		_, _, _, u := c.Counts()
		undetected += u
	}
	if undetected > 0 {
		fmt.Fprintf(os.Stderr, "dvmc-farm: %d undetected faults\n", undetected)
		return true, nil
	}
	return false, nil
}

func work(args []string) {
	fs := newFlagSet("work")
	var (
		coordinator = fs.String("coordinator", "http://127.0.0.1:8700", "coordinator base URL")
		workerName  = fs.String("name", "", "worker name (default host-pid)")
		maxShards   = fs.Int("max-shards", 0, "stop after completing this many shards (0 = run until the job finishes)")
		quiet       = fs.Bool("q", false, "suppress per-shard progress lines")
	)
	parseFlags(fs, args)
	if fs.NArg() != 0 {
		fatalf("work: unexpected arguments %v", fs.Args())
	}
	name := *workerName
	if name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dvmc-farm[%s]: "+format+"\n", append([]any{name}, args...)...)
	}
	if *quiet {
		logf = nil
	}
	n, err := fabric.RunWorker(context.Background(), fabric.WorkerOptions{
		Name: name, Coordinator: *coordinator, MaxShards: *maxShards, Logf: logf,
	})
	if err != nil {
		fatalf("work: %v (after %d shards)", err, n)
	}
}

func status(args []string) {
	fs := newFlagSet("status")
	var (
		coordinator = fs.String("coordinator", "http://127.0.0.1:8700", "coordinator base URL")
		jsonOut     = fs.Bool("json", false, "print the raw status JSON")
	)
	parseFlags(fs, args)
	if fs.NArg() != 0 {
		fatalf("status: unexpected arguments %v", fs.Args())
	}
	resp, err := http.Get(*coordinator + fabric.PathStatus)
	if err != nil {
		fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	var st fabric.StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		fatalf("status: %v", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			fatalf("status: %v", err)
		}
		return
	}
	fmt.Printf("%s job: %d cases, shards %d done / %d active / %d pending of %d",
		st.Kind, st.Cases, st.Done, st.Active, st.Pending, st.Total)
	if st.Finished {
		fmt.Print("  [finished]")
	}
	fmt.Println()
	for _, w := range st.Workers {
		shard := "idle"
		if w.ActiveShard >= 0 {
			shard = fmt.Sprintf("shard %d", w.ActiveShard)
			if w.Generation >= 0 {
				shard += fmt.Sprintf(" (gen %d)", w.Generation)
			}
		}
		fmt.Printf("  worker %-20s %3d shards (%.2f/s), %-16s seen %ds ago, renewed %ds ago\n",
			w.Name, w.Shards, w.ShardsPerSec, shard+",", w.LastSeenSeconds, w.LastRenewSeconds)
	}
}
