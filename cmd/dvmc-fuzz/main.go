// Command dvmc-fuzz runs randomized litmus-program fuzzing campaigns
// against the DVMC simulator and cross-checks three verdicts per run:
// the online checkers, the offline trace oracle, and the injected-fault
// ground truth. Any disagreement — an escape the online checkers missed
// or a false alarm on a clean run — is delta-debugged to a 1-minimal
// reproducer and written to a corpus directory.
//
// Subcommands:
//
//	gen     generate one case (program + config) as JSON
//	run     run a fuzzing campaign, print the classification table
//	shrink  delta-debug one failing case to a minimal reproducer
//	replay  re-run corpus reproducers and check their classifications
//
// Campaigns are deterministic: the same -seed produces byte-identical
// classification tables and corpus artifacts regardless of -workers.
//
// Exit codes (all subcommands): 0 clean, 1 usage or I/O error, 2 a
// failure was found (escape, false alarm, crash, or replay mismatch).
//
// Examples:
//
//	dvmc-fuzz run -seed 1 -n 500 -fault-frac 0.5 -workers 8 -corpus corpus/
//	dvmc-fuzz gen -seed 7 -threads 4 -ops 32 > case.json
//	dvmc-fuzz shrink case.json > min.json
//	dvmc-fuzz replay internal/fuzz/testdata/corpus
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dvmc"
	"dvmc/internal/fuzz"
	"dvmc/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "run":
		run(os.Args[2:])
	case "shrink":
		shrink(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fatalf("unknown subcommand %q (want gen, run, shrink, or replay)", os.Args[1])
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  dvmc-fuzz gen    [flags]                 generate one case as JSON on stdout
  dvmc-fuzz run    [flags]                 run a fuzzing campaign
  dvmc-fuzz shrink [flags] <case.json>     minimize a failing case to stdout
  dvmc-fuzz replay <dir | case.json>...    re-run corpus reproducers

Campaigns are deterministic: the same -seed gives byte-identical results
regardless of -workers. '<sub> -h' lists each subcommand's flags.

exit codes: 0 clean, 1 usage or I/O error, 2 failure found
(escape, false alarm, crash, or replay mismatch).
`)
	os.Exit(1)
}

// newFlagSet builds a flag set that exits 1 (usage), not 2, on parse
// errors — exit 2 is reserved for found failures.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

func parseFlags(fs *flag.FlagSet, args []string) {
	if err := fs.Parse(args); err != nil {
		os.Exit(1)
	}
}

func gen(args []string) {
	fs := newFlagSet("gen")
	var (
		seed     = fs.Uint64("seed", 1, "generator seed")
		threads  = fs.Int("threads", 4, "thread count")
		ops      = fs.Int("ops", 32, "operations per thread")
		blocks   = fs.Int("blocks", 4, "shared address pool size in blocks")
		words    = fs.Int("words", 4, "distinct words exposed per block (false sharing)")
		readFrac = fs.Float64("read-frac", 0.45, "fraction of data ops that are loads")
		rmwFrac  = fs.Float64("rmw-frac", 0.10, "fraction of ops that are atomic RMWs")
		mbFrac   = fs.Float64("membar-frac", 0.10, "fraction of ops that are membars")
		b32Frac  = fs.Float64("bits32-frac", 0.10, "fraction of data ops marked 32-bit")
		model    = fs.String("model", "TSO", "consistency model: SC|TSO|PSO|RMO")
		proto    = fs.String("protocol", "directory", "coherence protocol: directory|snooping")
		simSeed  = fs.Uint64("sim-seed", 1, "simulator seed")
		budget   = fs.Uint64("budget", fuzz.DefaultBudget, "cycle budget")
		faultStr = fs.String("fault", "", "fault to inject as kind:node:cycle (e.g. msg-drop:1:400); known kinds: "+strings.Join(fuzz.FaultKindNames(), ", "))
	)
	parseFlags(fs, args)
	if fs.NArg() != 0 {
		fatalf("gen: unexpected arguments %v", fs.Args())
	}
	gp := fuzz.DefaultGenParams(*seed)
	gp.Threads = *threads
	gp.OpsPerThread = *ops
	gp.Blocks = *blocks
	gp.WordsPerBlock = *words
	gp.ReadFrac = *readFrac
	gp.RMWFrac = *rmwFrac
	gp.MembarFrac = *mbFrac
	gp.Bits32Frac = *b32Frac
	prog, err := gp.Generate()
	if err != nil {
		fatalf("gen: %v", err)
	}
	c := &fuzz.Case{
		Name:     fmt.Sprintf("gen-seed%d", *seed),
		Model:    *model,
		Protocol: *proto,
		Seed:     *simSeed,
		Budget:   *budget,
		DVMC:     true,
		Program:  *prog,
	}
	if *faultStr != "" {
		f, err := parseFault(*faultStr)
		if err != nil {
			fatalf("gen: %v", err)
		}
		c.Fault = f
	}
	if err := c.Validate(); err != nil {
		fatalf("gen: %v", err)
	}
	data, err := c.Encode()
	if err != nil {
		fatalf("gen: %v", err)
	}
	os.Stdout.Write(data)
}

func parseFault(s string) (*fuzz.FaultSpec, error) {
	var f fuzz.FaultSpec
	parts := strings.Split(s, ":")
	if len(parts) < 3 || len(parts) > 5 {
		return nil, fmt.Errorf("fault %q: want kind:node:cycle[:window[:magnitude]]", s)
	}
	f.Kind = parts[0]
	if _, err := fmt.Sscanf(parts[1], "%d", &f.Node); err != nil {
		return nil, fmt.Errorf("fault node %q: %v", parts[1], err)
	}
	if _, err := fmt.Sscanf(parts[2], "%d", &f.Cycle); err != nil {
		return nil, fmt.Errorf("fault cycle %q: %v", parts[2], err)
	}
	if len(parts) > 3 {
		if _, err := fmt.Sscanf(parts[3], "%d", &f.Window); err != nil {
			return nil, fmt.Errorf("fault window %q: %v", parts[3], err)
		}
	}
	if len(parts) > 4 {
		if _, err := fmt.Sscanf(parts[4], "%d", &f.Magnitude); err != nil {
			return nil, fmt.Errorf("fault magnitude %q: %v", parts[4], err)
		}
	}
	if _, err := f.Injection(); err != nil {
		return nil, err
	}
	return &f, nil
}

// parseKinds splits a comma-separated fault-kind pool.
func parseKinds(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, k := range strings.Split(s, ",") {
		if k = strings.TrimSpace(k); k != "" {
			out = append(out, k)
		}
	}
	return out
}

func run(args []string) {
	fs := newFlagSet("run")
	var (
		seed       = fs.Uint64("seed", 1, "campaign master seed")
		n          = fs.Int("n", 200, "number of runs")
		workers    = fs.Int("workers", 0, "worker pool size (0 = min(GOMAXPROCS, runs), 1 = serial)")
		faultFrac  = fs.Float64("fault-frac", 0.5, "fraction of runs that inject a fault")
		budget     = fs.Uint64("budget", fuzz.DefaultBudget, "per-run cycle budget")
		corpus     = fs.String("corpus", "", "directory for minimized failure reproducers")
		minimize   = fs.Bool("minimize", true, "delta-debug failures before writing them")
		minBudget  = fs.Int("minimize-budget", fuzz.DefaultMinimizeBudget, "max re-runs per minimized failure")
		jsonOut    = fs.Bool("json", false, "print the summary as JSON")
		verbose    = fs.Bool("v", false, "print one line per non-clean run")
		metricsOut = fs.String("metrics-out", "", "re-run the first failing case (else the first case) with telemetry and write the snapshot to this file")
		spansOut   = fs.String("spans-out", "", "re-run the first failing case (else the first case) with span recording and write the binary dump to this file (render with dvmc-stat timeline)")
		coverage   = fs.Bool("coverage", false, "coverage-guided mode: after a random prefix, breed mutants from runs that reached new coverage (-n stays the total case budget)")
		gens       = fs.Int("gens", 4, "breeding generations (with -coverage)")
		genSize    = fs.Int("gen-size", 0, "mutants per generation (with -coverage; 0 = n/8)")
		kindsStr   = fs.String("kinds", "", "comma-separated fault-kind pool (empty = every kind); known: "+strings.Join(fuzz.FaultKindNames(), ", "))
	)
	parseFlags(fs, args)
	if fs.NArg() != 0 {
		fatalf("run: unexpected arguments %v", fs.Args())
	}
	base := fuzz.CampaignConfig{
		Seed: *seed, Runs: *n, Workers: *workers, FaultFrac: *faultFrac,
		Budget: *budget, CorpusDir: *corpus,
		Minimize: *minimize, MinimizeBudget: *minBudget,
		Kinds: parseKinds(*kindsStr),
	}
	var (
		records []fuzz.Record
		summary fuzz.Summary
		printed any
	)
	if *coverage {
		per := *genSize
		if per == 0 {
			per = *n / 8
			if per < 1 {
				per = 1
			}
		}
		init := *n - *gens*per
		if init < 1 {
			fatalf("run: -n %d leaves no random prefix for %d generations of %d mutants", *n, *gens, per)
		}
		cc := fuzz.CoverageConfig{Campaign: base, InitRuns: init, Generations: *gens, PerGen: per}
		var covSum fuzz.CoverageSummary
		var err error
		records, covSum, _, err = fuzz.RunCoverage(cc)
		if err != nil {
			fatalf("run: %v", err)
		}
		summary, printed = covSum.Summary, covSum
	} else {
		cp, err := fuzz.NewCampaign(base)
		if err != nil {
			fatalf("run: %v", err)
		}
		records, summary, _, err = cp.Run()
		if err != nil {
			fatalf("run: %v", err)
		}
		printed = summary
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(printed); err != nil {
			fatalf("run: %v", err)
		}
	} else {
		fmt.Print(printed)
	}
	if *verbose {
		for _, r := range fuzz.SortRecordsByClass(records) {
			if r.Result.Class == fuzz.ClassAgreeClean {
				continue
			}
			fmt.Printf("  run %d: %s %s/%s", r.Index, r.Result.Class, r.Case.Model, r.Case.Protocol)
			if r.Case.Fault != nil {
				fmt.Printf(" fault=%s@%d", r.Case.Fault.Kind, r.Case.Fault.Cycle)
			}
			if r.Result.Detail != "" {
				fmt.Printf(" (%s)", r.Result.Detail)
			}
			if r.CorpusFile != "" {
				fmt.Printf(" -> %s", r.CorpusFile)
			}
			fmt.Println()
		}
	}
	if *metricsOut != "" && len(records) > 0 {
		if err := writeRunSnapshot(records, *metricsOut); err != nil {
			fatalf("run: metrics: %v", err)
		}
		if *metricsOut != "-" {
			fmt.Printf("telemetry snapshot written to %s\n", *metricsOut)
		}
	}
	if *spansOut != "" && len(records) > 0 {
		rec, err := fuzz.WriteSpans(records, *spansOut)
		if err != nil {
			fatalf("run: spans: %v", err)
		}
		// stderr, so -json stdout stays machine-readable (and cmp-equal
		// to a farm run's summary).
		fmt.Fprintf(os.Stderr, "span dump for run %d (%s) written to %s\n", rec.Index, rec.Result.Class, *spansOut)
	}
	if summary.Failed() {
		fmt.Fprintf(os.Stderr, "dvmc-fuzz: %d failing runs\n", summary.Failures)
		os.Exit(2)
	}
}

// writeRunSnapshot re-executes one campaign case — the first failing
// run if any, else the first run — with telemetry enabled, and records
// its snapshot. The campaign itself stays uninstrumented so telemetry
// cost never skews classification timing; the re-run reproduces the
// same deterministic execution with sampling on.
func writeRunSnapshot(records []fuzz.Record, path string) error {
	rec := records[0]
	for _, r := range fuzz.SortRecordsByClass(records) {
		if r.Result.Class.Failure() {
			rec = r
			break
		}
	}
	c := rec.Case
	cfg, err := c.Config()
	if err != nil {
		return err
	}
	cfg = cfg.WithTelemetry(dvmc.TelemetryOn())
	name := c.Name
	if name == "" {
		name = "fuzz"
	}
	w := c.Program.Spec(name)

	var sys *dvmc.System
	if c.Fault == nil {
		sys, err = dvmc.NewSystem(cfg, w)
		if err != nil {
			return err
		}
		sys.RunToCompletion(c.Budget)
	} else {
		inj, err := c.Fault.Injection()
		if err != nil {
			return err
		}
		_, sys, err = dvmc.RunInjectionSystem(cfg, w, inj, c.Budget)
		if err != nil {
			return err
		}
	}
	return telemetry.WriteSnapshotFile(sys.TelemetrySnapshot(), path)
}

func shrink(args []string) {
	fs := newFlagSet("shrink")
	var (
		budget = fs.Int("budget", fuzz.DefaultMinimizeBudget, "max re-runs")
		out    = fs.String("o", "-", "output path ('-' for stdout)")
	)
	parseFlags(fs, args)
	if fs.NArg() != 1 {
		fatalf("shrink: need exactly one case file")
	}
	c, err := fuzz.LoadCase(fs.Arg(0))
	if err != nil {
		fatalf("shrink: %v", err)
	}
	min, err := fuzz.Minimize(c, *budget)
	if err != nil {
		fatalf("shrink: %v", err)
	}
	data, err := min.Encode()
	if err != nil {
		fatalf("shrink: %v", err)
	}
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("shrink: %v", err)
	}
	fmt.Fprintf(os.Stderr, "dvmc-fuzz: shrunk to %d threads, %d ops (%s)\n",
		min.Program.NumThreads(), min.Program.NumOps(), min.Expect)
}

func replay(args []string) {
	if len(args) == 0 {
		fatalf("replay: need at least one corpus directory or case file")
	}
	bad := 0
	total := 0
	for _, arg := range args {
		var results []fuzz.ReplayResult
		info, err := os.Stat(arg)
		switch {
		case err != nil:
			fatalf("replay: %v", err)
		case info.IsDir():
			results, err = fuzz.ReplayDir(arg)
			if err != nil {
				fatalf("replay: %v", err)
			}
		default:
			c, err := fuzz.LoadCase(arg)
			if err != nil {
				fatalf("replay: %v", err)
			}
			res, _, err := fuzz.RunCase(c)
			if err != nil {
				fatalf("replay: %v", err)
			}
			results = []fuzz.ReplayResult{{
				Path: arg, Expect: c.Expect, Got: res.Class, Result: res,
				OK: c.Expect == "" || res.Class == c.Expect,
			}}
		}
		for _, r := range results {
			total++
			status := "ok"
			if !r.OK {
				status = "MISMATCH"
				bad++
			}
			fmt.Printf("%-8s %s: expect %s, got %s\n", status, r.Path, orDash(string(r.Expect)), orDash(string(r.Got)))
			if r.Result.Panic != "" {
				fmt.Printf("         %s\n", r.Result.Panic)
			}
		}
	}
	fmt.Printf("replayed %d cases, %d mismatches\n", total, bad)
	if bad > 0 {
		os.Exit(2)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dvmc-fuzz: "+format+"\n", args...)
	os.Exit(1)
}
