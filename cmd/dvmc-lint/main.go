// Command dvmc-lint runs the dvmc static-analysis suite (internal/analysis)
// over the module containing the working directory: maprange, detsource,
// time16cmp, exhaustive, allocfree, confine, and pooldiscipline. It prints
// findings as
//
//	file:line:col: [analyzer] message
//
// (or, with -json, as a machine-readable array of
// {file,line,col,analyzer,msg,reason} records) and exits 0 when clean, 1 on
// any diagnostic, 2 when the module fails to load or type-check. Package
// patterns are accepted for familiarity
// ("go run ./cmd/dvmc-lint ./...") but the suite always analyzes the
// whole module: the determinism contract is a whole-module property.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dvmc/internal/analysis"
)

// jsonFinding is the machine-readable shape of one diagnostic, for CI
// annotation tooling and editors (-json flag).
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Msg      string `json:"msg"`
	Reason   string `json:"reason,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("dvmc-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	analyzers := fs.String("analyzers", "", "comma-separated subset to run (see -list); empty = all")
	listDoc := fs.Bool("list", false, "list analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array of {file,line,col,analyzer,msg,reason}")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: dvmc-lint [flags] [packages]\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listDoc {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected, err := analysis.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "dvmc-lint:", err)
		return 2
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "dvmc-lint:", err)
		return 2
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "dvmc-lint:", err)
		return 2
	}
	if len(mod.TypeErrors) > 0 {
		for _, e := range mod.TypeErrors {
			fmt.Fprintln(stderr, "dvmc-lint: type error:", e)
		}
		fmt.Fprintf(stderr, "dvmc-lint: %d type error(s); findings would be unreliable\n", len(mod.TypeErrors))
		return 2
	}

	diags := analysis.Run(mod, selected)
	cwd, _ := os.Getwd()
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		findings = append(findings, jsonFinding{
			File: file, Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Msg: d.Message, Reason: d.Reason,
		})
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "dvmc-lint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Msg)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "dvmc-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks upward from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
