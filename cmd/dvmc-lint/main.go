// Command dvmc-lint runs the dvmc static-analysis suite (internal/analysis)
// over the module containing the working directory: maprange, detsource,
// time16cmp, and exhaustive. It prints findings as
//
//	file:line:col: [analyzer] message
//
// and exits 0 when clean, 1 on any diagnostic, 2 when the module fails to
// load or type-check. Package patterns are accepted for familiarity
// ("go run ./cmd/dvmc-lint ./...") but the suite always analyzes the
// whole module: the determinism contract is a whole-module property.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dvmc/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("dvmc-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	analyzers := fs.String("analyzers", "", "comma-separated subset to run (maprange,detsource,time16cmp,exhaustive); empty = all")
	listDoc := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: dvmc-lint [flags] [packages]\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listDoc {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected, err := analysis.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "dvmc-lint:", err)
		return 2
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "dvmc-lint:", err)
		return 2
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "dvmc-lint:", err)
		return 2
	}
	if len(mod.TypeErrors) > 0 {
		for _, e := range mod.TypeErrors {
			fmt.Fprintln(stderr, "dvmc-lint: type error:", e)
		}
		fmt.Fprintf(stderr, "dvmc-lint: %d type error(s); findings would be unreliable\n", len(mod.TypeErrors))
		return 2
	}

	diags := analysis.Run(mod, selected)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		file := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "dvmc-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks upward from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
