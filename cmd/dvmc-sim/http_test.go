package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dvmc"
	"dvmc/internal/telemetry"
)

// newTestSystem assembles a small telemetry-enabled system and advances
// it far enough that counters and sampled series are non-trivial.
func newTestSystem(t *testing.T) *dvmc.System {
	t.Helper()
	cfg := dvmc.ScaledConfig().WithTelemetry(dvmc.TelemetryOn())
	w, err := dvmc.WorkloadByName("oltp")
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	sys, err := dvmc.NewSystem(cfg, w)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	sys.RunCycles(4096)
	return sys
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestTelemetryMuxMetrics exercises the live Prometheus endpoint against
// a running system: it must serve well-formed exposition text containing
// the core metric families.
func TestTelemetryMuxMetrics(t *testing.T) {
	sys := newTestSystem(t)
	ls := &lockedSystem{sys: sys}
	srv := httptest.NewServer(telemetryMux(ls))
	defer srv.Close()

	code, ctype, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d, want 200", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics: Content-Type %q, want text/plain exposition", ctype)
	}
	for _, want := range []string{
		"# HELP dvmc_proc_ops_retired",
		"# TYPE dvmc_proc_ops_retired counter",
		`dvmc_proc_ops_retired{node="0"}`,
		"dvmc_net_bytes_total",
		"dvmc_snapshot_cycle 4096",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics: missing %q in body:\n%s", want, body)
		}
	}

	// The endpoint reflects live progress: advancing the system moves
	// the snapshot cycle on the next scrape.
	ls.mu.Lock()
	ls.sys.RunCycles(1024)
	ls.mu.Unlock()
	_, _, body2 := get(t, srv, "/metrics")
	if !strings.Contains(body2, "dvmc_snapshot_cycle 5120") {
		t.Errorf("/metrics after RunCycles: snapshot cycle not advanced to 5120")
	}
}

// TestTelemetryMuxJSON checks the JSON snapshot endpoint round-trips
// through the snapshot decoder.
func TestTelemetryMuxJSON(t *testing.T) {
	sys := newTestSystem(t)
	srv := httptest.NewServer(telemetryMux(&lockedSystem{sys: sys}))
	defer srv.Close()

	code, ctype, body := get(t, srv, "/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json: status %d, want 200", code)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/metrics.json: Content-Type %q, want application/json", ctype)
	}
	snap, err := telemetry.DecodeSnapshot(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics.json: decode: %v", err)
	}
	if snap.Cycle != 4096 {
		t.Errorf("snapshot cycle = %d, want 4096", snap.Cycle)
	}
	if len(snap.Metrics) == 0 || len(snap.Series) == 0 {
		t.Errorf("snapshot has %d metrics and %d series, want both non-empty",
			len(snap.Metrics), len(snap.Series))
	}
}

// TestTelemetryMuxPprof confirms the profiling index is wired in.
func TestTelemetryMuxPprof(t *testing.T) {
	sys := newTestSystem(t)
	srv := httptest.NewServer(telemetryMux(&lockedSystem{sys: sys}))
	defer srv.Close()

	code, _, body := get(t, srv, "/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/: status %d, want 200", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index does not list the goroutine profile")
	}
}
