// Command dvmc-sim runs one full-system simulation: a multiprocessor
// with the selected coherence protocol and consistency model, a paper
// workload, and (optionally) DVMC verification plus SafetyNet recovery.
// It prints runtime, memory-system, interconnect, and checker statistics.
//
// Telemetry: -metrics-out records a cycle-sampled telemetry snapshot
// (inspect it with dvmc-stat); -http serves live /metrics (Prometheus
// text), /metrics.json, and /debug/pprof/ while the simulation runs.
// Both enable the deterministic cycle sampler. -spans-out records the
// causal span dump (coherence transactions, phase profile) — render it
// with dvmc-stat timeline and open in Perfetto.
//
// Exit codes: 0 clean, 1 usage or I/O error, 2 violations detected.
//
// Examples:
//
//	dvmc-sim -workload oltp -model TSO -protocol directory -txns 200
//	dvmc-sim -workload apache -txns 500 -metrics-out run.json
//	dvmc-sim -workload oltp -txns 100000 -http :8080
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dvmc"
	"dvmc/internal/telemetry"
)

func main() {
	var (
		workloadName = flag.String("workload", "oltp", "workload: apache|oltp|jbb|slash|barnes|uniform")
		modelName    = flag.String("model", "TSO", "consistency model: SC|TSO|PSO|RMO")
		protoName    = flag.String("protocol", "directory", "coherence protocol: directory|snooping")
		nodes        = flag.Int("nodes", 8, "processor count")
		txns         = flag.Uint64("txns", 200, "transactions to complete")
		maxCycles    = flag.Uint64("max-cycles", 100_000_000, "cycle budget")
		seed         = flag.Uint64("seed", 1, "simulation seed")
		linkGBps     = flag.Float64("link", 2.5, "link bandwidth in GB/s")
		noDVMC       = flag.Bool("no-dvmc", false, "disable all DVMC checkers")
		noSN         = flag.Bool("no-safetynet", false, "disable SafetyNet BER")
		paperScale   = flag.Bool("paper-scale", false, "use the paper's full cache geometry (slower)")
		verbose      = flag.Bool("v", false, "full telemetry report (per-node metrics, latency, events)")
		metricsOut   = flag.String("metrics-out", "", "write the telemetry snapshot to this file (.json|.prom|.csv|.series.csv; '-' for stdout JSON)")
		sampleEvery  = flag.Uint64("sample-every", 0, "telemetry sampling period in cycles (0 = default)")
		httpAddr     = flag.String("http", "", "serve live /metrics, /metrics.json, and /debug/pprof/ on this address while running")
		spansOut     = flag.String("spans-out", "", "record causal spans and write the binary dump to this file (render with dvmc-stat timeline)")
	)
	flag.Parse()

	cfg := dvmc.ScaledConfig()
	if *paperScale {
		cfg = dvmc.DefaultConfig()
	}
	cfg = cfg.WithNodes(*nodes).WithLinkGBps(*linkGBps).WithSeed(*seed)
	model, ok := parseModel(*modelName)
	if !ok {
		fatalf("unknown model %q", *modelName)
	}
	cfg = cfg.WithModel(model)
	switch strings.ToLower(*protoName) {
	case "directory":
		cfg = cfg.WithProtocol(dvmc.Directory)
	case "snooping":
		cfg = cfg.WithProtocol(dvmc.Snooping)
	default:
		fatalf("unknown protocol %q", *protoName)
	}
	if *noDVMC {
		cfg.DVMC = dvmc.Off()
	}
	if *noSN {
		cfg.SafetyNet = false
	}
	if *metricsOut != "" || *httpAddr != "" || *sampleEvery > 0 {
		t := dvmc.TelemetryOn()
		t.Every = dvmc.Cycle(*sampleEvery)
		cfg = cfg.WithTelemetry(t)
	}
	if *spansOut != "" {
		cfg = cfg.WithSpans(dvmc.SpansOn())
	}

	w, err := dvmc.WorkloadByName(*workloadName)
	if err != nil {
		fatalf("%v", err)
	}

	sys, err := dvmc.NewSystem(cfg, w)
	if err != nil {
		fatalf("assemble: %v", err)
	}
	fmt.Printf("dvmc-sim: %s on %d-node %v/%v system (dvmc=%v safetynet=%v link=%.1fGB/s)\n",
		w.Name, cfg.Nodes, cfg.Protocol, cfg.Model, cfg.DVMC.Any(), cfg.SafetyNet, cfg.LinkGBps)

	var res dvmc.Results
	if *httpAddr != "" {
		fmt.Printf("dvmc-sim: serving /metrics and /debug/pprof/ on %s\n", *httpAddr)
		res, err = runWithHTTP(sys, *httpAddr, *txns, *maxCycles)
	} else {
		res, err = sys.Run(*txns, *maxCycles)
	}
	if err != nil {
		fatalf("run: %v", err)
	}
	sys.DrainCheckers()

	fmt.Printf("\nruntime:        %d cycles for %d transactions (%.3f txn/kcycle)\n",
		res.Cycles, res.Transactions, res.TPKC())
	fmt.Printf("ops retired:    %d (loads executed %d, squashes spec=%d verify=%d)\n",
		res.OpsRetired, res.LoadsExecuted, res.SpecSquashes, res.VerifySquashes)
	fmt.Printf("L1:             %d hits / %d misses   L2: %d hits / %d misses\n",
		res.L1Hits, res.L1Misses, res.L2Hits, res.L2Misses)
	fmt.Printf("replay:         %d loads, %d L1 misses (ratio %.4f)\n",
		res.ReplayLoads, res.ReplayL1Misses, res.ReplayMissRatio())
	fmt.Printf("interconnect:   max link %.3f B/cycle, total %d bytes\n",
		res.MaxLinkBandwidth, res.TotalLinkBytes)
	for cl, bw := range res.MaxLinkByClass {
		if bw > 0 {
			fmt.Printf("                  %-10v %.4f B/cycle on hottest link\n", cl, bw)
		}
	}
	if cfg.DVMC.CacheCoherence {
		fmt.Printf("coherence chk:  %d informs (+%d open), %d processed at METs\n",
			res.Informs, res.OpenInforms, res.InformsProcessed)
	}
	if cfg.SafetyNet {
		fmt.Printf("safetynet:      %d checkpoints, %d log msgs, %d recoveries\n",
			res.Checkpoints, res.LogMessages, res.Recoveries)
	}
	fmt.Printf("violations:     %d\n", res.Violations)
	for _, v := range sys.Violations() {
		fmt.Printf("  %v\n", v)
	}

	// The telemetry registry is the single source of truth for detailed
	// statistics: the -v report, the -metrics-out file, and the live
	// /metrics endpoint all render the same snapshot.
	snap := sys.TelemetrySnapshot()
	if *verbose {
		fmt.Println()
		if err := snap.Text(os.Stdout); err != nil {
			fatalf("telemetry report: %v", err)
		}
	}
	if *metricsOut != "" {
		if err := telemetry.WriteSnapshotFile(snap, *metricsOut); err != nil {
			fatalf("%v", err)
		}
		if *metricsOut != "-" {
			fmt.Printf("telemetry snapshot written to %s\n", *metricsOut)
		}
	}
	if *spansOut != "" {
		dump, err := sys.SpanBytes()
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*spansOut, dump, 0o644); err != nil {
			fatalf("%v", err)
		}
		st := sys.SpanStats()
		fmt.Printf("span dump written to %s (%d spans recorded, %d evicted, %d hops)\n",
			*spansOut, st.Spans, st.SpansDropped, st.Events)
	}
	if res.Violations > 0 {
		os.Exit(2)
	}
}

func parseModel(s string) (dvmc.Model, bool) {
	switch strings.ToUpper(s) {
	case "SC":
		return dvmc.SC, true
	case "TSO":
		return dvmc.TSO, true
	case "PSO":
		return dvmc.PSO, true
	case "RMO":
		return dvmc.RMO, true
	default:
		return 0, false
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dvmc-sim: "+format+"\n", args...)
	os.Exit(1)
}
