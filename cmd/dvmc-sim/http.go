package main

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"

	"dvmc"
	"dvmc/internal/telemetry"
)

// telemetryMux serves live introspection for a running simulation:
//
//	/metrics        Prometheus text exposition of the telemetry registry
//	/metrics.json   the full JSON snapshot (series, events, latency)
//	/debug/pprof/   the standard Go profiling endpoints
//
// The simulator itself is strictly single-threaded and deterministic;
// all concurrency lives here in the cmd layer (outside the dvmc-lint
// determinism allowlist). The driver loop holds ls.mu while stepping the
// kernel and releases it between chunks, so handlers always observe a
// quiesced system at a cycle boundary.
func telemetryMux(ls *lockedSystem) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := ls.snapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := snap.Prometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		snap := ls.snapshot()
		w.Header().Set("Content-Type", "application/json")
		if err := snap.EncodeJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// lockedSystem pairs the simulated system with the lock that serialises
// the driver loop against the HTTP handlers; dvmc-lint's confine checker
// enforces that every access to sys holds mu.
type lockedSystem struct {
	mu sync.Mutex
	//dvmc:guardedby mu
	sys *dvmc.System
}

// snapshot captures the telemetry snapshot at a quiesced cycle boundary.
func (ls *lockedSystem) snapshot() *telemetry.Snapshot {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.sys.TelemetrySnapshot()
}

// httpRunChunk is how many cycles the driver simulates per lock
// acquisition when serving -http: long enough that locking is noise,
// short enough that scrapes observe fresh state.
const httpRunChunk = 16384

// step advances the system by up to httpRunChunk cycles under the lock
// and reports whether the run budget (transactions or cycles) is spent.
func (ls *lockedSystem) step(txns, maxCycles uint64) (done bool) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.sys.Transactions() >= txns || uint64(ls.sys.Now()) >= maxCycles {
		return true
	}
	chunk := uint64(httpRunChunk)
	if left := maxCycles - uint64(ls.sys.Now()); left < chunk {
		chunk = left
	}
	ls.sys.RunCycles(chunk)
	return false
}

// runWithHTTP drives the simulation in locked chunks while an HTTP
// server exposes /metrics and pprof. Returns the whole-run results and
// mirrors System.Run's budget-expiry error.
func runWithHTTP(sys *dvmc.System, addr string, txns, maxCycles uint64) (dvmc.Results, error) {
	ls := &lockedSystem{sys: sys}
	srv := &http.Server{Addr: addr, Handler: telemetryMux(ls)}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "dvmc-sim: http: %v\n", err)
		}
	}()
	defer srv.Close()

	for !ls.step(txns, maxCycles) {
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	res := ls.sys.ResultsSoFar()
	if ls.sys.Transactions() < txns {
		return res, fmt.Errorf("dvmc: %d of %d transactions after %d cycles",
			ls.sys.Transactions(), txns, maxCycles)
	}
	return res, nil
}
